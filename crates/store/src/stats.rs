//! Ingest statistics: what the store did, and proof that it stayed exact.
//!
//! Counters are lock-free atomics bumped on the ingest paths and read as a
//! point-in-time [`StoreStats`] snapshot via
//! [`AlphaStore::stats`](crate::AlphaStore::stats). On a durable store the
//! snapshot file carries the counters too, so statistics survive restarts
//! alongside the classes they describe (recovery restores them, then WAL
//! replay re-increments exactly as the lost inserts did).
//!
//! The one invariant worth wiring into production monitoring:
//!
//! ```
//! use alpha_store::AlphaStore;
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: AlphaStore<u64> = AlphaStore::default();
//! let mut arena = ExprArena::new();
//! for src in [r"\x. x + 1", r"\y. y + 1", r"\z. z * 2"] {
//!     let root = parse(&mut arena, src).unwrap();
//!     store.insert(&arena, root);
//! }
//! let stats = store.stats();
//! assert!(stats.is_exact()); // merges are *confirmed*, never hash-trusted
//! assert_eq!(stats.terms_ingested, 3);
//! assert_eq!(stats.classes_created, 2); // the two x+1 lambdas merged
//! assert_eq!(stats.merges_confirmed, 1);
//! println!("{stats}"); // "3 terms -> 2 classes (1 confirmed merges, …)"
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of store activity, from
/// [`AlphaStore::stats`](crate::AlphaStore::stats).
///
/// The invariant worth auditing in production is
/// `unconfirmed_merges == 0`: every merge of a term into an existing class
/// was confirmed by a canonical-form comparison, never taken on the hash
/// alone, so the store is exact even in the (cryptographically unlikely,
/// paper Theorem 6.8) event of hash collisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Terms ingested (insert calls, batched or not).
    pub terms_ingested: u64,
    /// Classes created (first member of a new equivalence class).
    pub classes_created: u64,
    /// Terms merged into an existing class after the canonical de Bruijn
    /// comparison confirmed true alpha-equivalence.
    pub merges_confirmed: u64,
    /// Inserts whose hash matched one or more existing classes that turned
    /// out **not** to be alpha-equivalent — true hash collisions, kept as
    /// separate classes.
    pub hash_collisions: u64,
    /// Merges taken on hash equality without confirmation. The store never
    /// does this; the counter exists so auditing code can assert it.
    pub unconfirmed_merges: u64,
    /// Subexpression entries indexed (subexpression-granularity stores
    /// only; roots are counted in `terms_ingested`, never here).
    pub subterms_indexed: u64,
    /// Of `subterms_indexed`, how many merged into an existing class after
    /// the canonical comparison confirmed true alpha-equivalence. Kept
    /// apart from `merges_confirmed` so root-level dedup ratios stay
    /// comparable across granularities.
    ///
    /// The *split* between this counter and `merges_confirmed` depends on
    /// batch group-commit boundaries (each chunk drains its subexpression
    /// entries before its roots, so which insert "creates" a class shared
    /// between a root and a subterm is decided by the chunking). Since
    /// WAL records carry group boundary markers (format v2), replay
    /// reapplies exactly the original groups and the split survives
    /// restarts **exactly**, provided the store reopens with the
    /// `chunk_entries` that wrote it; the **sum** of the two counters is
    /// determined by the final state (`total entries - classes_created`)
    /// and reconciles unconditionally.
    pub subterm_merges_confirmed: u64,
    /// Subexpressions skipped by the granularity's `min_nodes` floor.
    pub subterms_skipped_min_nodes: u64,
}

impl StoreStats {
    /// Whether the partition is trustworthy as *exact* alpha-equivalence:
    /// no merge was ever taken unconfirmed.
    pub fn is_exact(&self) -> bool {
        self.unconfirmed_merges == 0
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} terms -> {} classes ({} confirmed merges, {} hash collisions, {} unconfirmed)",
            self.terms_ingested,
            self.classes_created,
            self.merges_confirmed,
            self.hash_collisions,
            self.unconfirmed_merges,
        )?;
        if self.subterms_indexed > 0 || self.subterms_skipped_min_nodes > 0 {
            write!(
                f,
                " + {} subterms indexed ({} confirmed subterm merges, {} skipped by min_nodes)",
                self.subterms_indexed,
                self.subterm_merges_confirmed,
                self.subterms_skipped_min_nodes,
            )?;
        }
        Ok(())
    }
}

/// Resident footprint of the store's hash-consed canon DAG, from
/// [`AlphaStore::canon_dag_stats`](crate::AlphaStore::canon_dag_stats).
///
/// `logical_nodes` is what the pre-DAG design held resident: one
/// standalone canonical tree per class, Σ node counts over all classes.
/// `resident_nodes` is what the shared table actually holds: each
/// distinct canonical node once, however many classes (and subterm-index
/// entries) reach it. The quotient is the structure-sharing win:
///
/// ```
/// use alpha_store::AlphaStore;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = AlphaStore::builder().subexpressions(1).build();
/// let mut arena = ExprArena::new();
/// let t = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
/// store.insert(&arena, t);
/// let dag = store.canon_dag_stats();
/// assert!(dag.sharing_ratio() > 1.0); // subterm classes share the DAG
/// assert!(dag.resident_bytes > 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CanonDagStats {
    /// Distinct canonical nodes resident in the shared table.
    pub resident_nodes: u64,
    /// Bytes those nodes (plus the interned free-variable names) occupy.
    pub resident_bytes: u64,
    /// Distinct free-variable names interned.
    pub resident_names: u64,
    /// Σ canonical **tree** node counts over all classes — the resident
    /// cost of the standalone one-arena-per-class design this store
    /// replaced.
    pub logical_nodes: u64,
}

impl CanonDagStats {
    /// How many times over the logical canonical structure is shared:
    /// `logical_nodes / resident_nodes` (1.0 for an empty store).
    pub fn sharing_ratio(&self) -> f64 {
        if self.resident_nodes == 0 {
            1.0
        } else {
            self.logical_nodes as f64 / self.resident_nodes as f64
        }
    }
}

impl fmt::Display for CanonDagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} resident canon nodes ({} bytes, {} names) for {} logical nodes ({:.2}x sharing)",
            self.resident_nodes,
            self.resident_bytes,
            self.resident_names,
            self.logical_nodes,
            self.sharing_ratio(),
        )
    }
}

/// Lock-free counters behind [`StoreStats`]. Relaxed ordering suffices:
/// the counters are monotone and only read as a snapshot.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub(crate) terms_ingested: AtomicU64,
    pub(crate) classes_created: AtomicU64,
    pub(crate) merges_confirmed: AtomicU64,
    pub(crate) hash_collisions: AtomicU64,
    pub(crate) unconfirmed_merges: AtomicU64,
    pub(crate) subterms_indexed: AtomicU64,
    pub(crate) subterm_merges_confirmed: AtomicU64,
    pub(crate) subterms_skipped_min_nodes: AtomicU64,
}

impl StatCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Resets the counters to a previously snapshotted value — the
    /// recovery path, run before any concurrent access exists.
    pub(crate) fn restore(&self, s: &StoreStats) {
        self.terms_ingested
            .store(s.terms_ingested, Ordering::Relaxed);
        self.classes_created
            .store(s.classes_created, Ordering::Relaxed);
        self.merges_confirmed
            .store(s.merges_confirmed, Ordering::Relaxed);
        self.hash_collisions
            .store(s.hash_collisions, Ordering::Relaxed);
        self.unconfirmed_merges
            .store(s.unconfirmed_merges, Ordering::Relaxed);
        self.subterms_indexed
            .store(s.subterms_indexed, Ordering::Relaxed);
        self.subterm_merges_confirmed
            .store(s.subterm_merges_confirmed, Ordering::Relaxed);
        self.subterms_skipped_min_nodes
            .store(s.subterms_skipped_min_nodes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StoreStats {
        StoreStats {
            terms_ingested: self.terms_ingested.load(Ordering::Relaxed),
            classes_created: self.classes_created.load(Ordering::Relaxed),
            merges_confirmed: self.merges_confirmed.load(Ordering::Relaxed),
            hash_collisions: self.hash_collisions.load(Ordering::Relaxed),
            unconfirmed_merges: self.unconfirmed_merges.load(Ordering::Relaxed),
            subterms_indexed: self.subterms_indexed.load(Ordering::Relaxed),
            subterm_merges_confirmed: self.subterm_merges_confirmed.load(Ordering::Relaxed),
            subterms_skipped_min_nodes: self.subterms_skipped_min_nodes.load(Ordering::Relaxed),
        }
    }
}
