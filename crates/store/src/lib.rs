//! # alpha-store
//!
//! A **sharded, concurrent, content-addressed store of alpha-equivalence
//! classes**, built on the hashing-modulo-alpha algorithm of Maziarz,
//! Ellis, Lawrence, Fitzgibbon and Peyton Jones (PLDI 2021).
//!
//! The library crates of this workspace compute per-expression hashes such
//! that alpha-equivalent terms collide. This crate turns that per-call
//! capability into a long-lived *subsystem*: an [`AlphaStore`] ingests
//! streams of terms — singly or in batches, from one thread or many — and
//! deduplicates them **modulo alpha**, the way hash-consing engines and
//! Merkle-DAG stores deduplicate by content address.
//!
//! ## Design
//!
//! * **Configured once, queried many.** A [`StoreBuilder`] fixes the hash
//!   scheme, shard count and [`Granularity`] up front:
//!   [`Granularity::Roots`] indexes whole inserted terms (the classic
//!   mode), [`Granularity::Subexpressions`] indexes *every* subexpression
//!   of them — hashed in the same fused O(n (log n)²) batched pass, never
//!   per-subterm — so [`AlphaStore::contains`] can answer containment
//!   queries modulo alpha. See [`granularity`] for the cost model.
//! * **Content addressing.** Each term is hashed with the workspace's
//!   [`HashScheme`](alpha_hash::combine::HashScheme); the hash routes the
//!   term to one of N lock-striped shards, so concurrent ingest contends
//!   only on terms that hash to the same stripe.
//! * **Exact, not probabilistic.** A hash match alone never merges two
//!   terms. On a candidate match the store confirms canonical de Bruijn
//!   identity ([`lambda_lang::debruijn`]) and only merges on true
//!   alpha-equivalence; genuine hash collisions are kept as separate
//!   classes and counted in [`StoreStats::hash_collisions`]. Every merge
//!   is confirmed, so [`StoreStats::unconfirmed_merges`] is always zero.
//! * **Hash-consed canonical storage.** Canonical forms live in one
//!   shared, sharded canon DAG: every distinct de Bruijn node is resident
//!   once, however many classes and subterm-index entries reach it, and
//!   merge confirmation for interned entries is one O(1) ref compare.
//!   [`AlphaStore::canon_dag_stats`] reports the resident footprint and
//!   sharing ratio; [`AlphaStore::representative_into`] rebuilds a named
//!   representative with fresh binders, and
//!   [`AlphaStore::canonical_text`] renders the paper's `\. %0` notation.
//! * **Corpus analytics.** [`corpus::corpus_shared_dag_size`] measures the
//!   memory a class-per-node DAG of the whole corpus would need (reusing
//!   [`alpha_hash::equiv::shared_dag_size`]), and
//!   [`corpus::store_backed_cse`] runs cross-term common-subexpression
//!   elimination over the deduplicated corpus.
//! * **Durable, optionally.** [`StoreBuilder::open_durable`] roots the
//!   store in a directory: inserts tee into a group-committed write-ahead
//!   log, [`AlphaStore::snapshot`]/[`AlphaStore::compact`] keep an
//!   atomically-written point-in-time image, and
//!   [`AlphaStore::open`] recovers after a crash — replaying the WAL tail
//!   through the normal ingest path so every recovered merge is
//!   re-confirmed and exactness survives restarts. See [`persist`].
//!
//! ## Quick start
//!
//! ```
//! use alpha_store::AlphaStore;
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: AlphaStore<u64> = AlphaStore::default();
//! let mut arena = ExprArena::new();
//! let a = parse(&mut arena, r"\x. x + 1")?;
//! let b = parse(&mut arena, r"\y. y + 1")?;
//! let first = store.insert(&arena, a);
//! let second = store.insert(&arena, b); // alpha-equivalent: same class
//! assert_eq!(first.class, second.class);
//! assert!(first.fresh && !second.fresh);
//! assert_eq!(store.num_classes(), 1);
//! assert_eq!(store.num_terms(), 2);
//! # Ok::<(), lambda_lang::ParseError>(())
//! ```
//!
//! For the subexpression-granularity mode and containment queries:
//!
//! ```
//! use alpha_store::AlphaStore;
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: AlphaStore<u64> = AlphaStore::builder().subexpressions(2).build();
//! let mut arena = ExprArena::new();
//! let t = parse(&mut arena, r"map (\x. x + 1) things")?;
//! store.insert(&arena, t);
//! let pattern = parse(&mut arena, r"\q. q + 1")?; // alpha-renamed subterm
//! assert!(store.contains(&arena, pattern).is_some());
//! # Ok::<(), lambda_lang::ParseError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod canon;
pub mod corpus;
pub(crate) mod dag;
pub mod granularity;
pub(crate) mod obs;
pub mod persist;
pub mod prepare;
pub mod query;
pub mod stats;
pub mod store;
pub mod update;

pub use corpus::{corpus_shared_dag_size, store_backed_cse, StoreBackedCse};
pub use granularity::{ConfigError, Granularity, StoreBuilder};
pub use persist::vfs::{FaultKind, FaultVfs, OsVfs, Vfs, VfsFile};
pub use persist::{PersistError, SnapshotOp, WalOp};
pub use prepare::Preparer;
pub use stats::{CanonDagStats, StoreStats};
pub use store::{
    AlphaStore, ClassId, Health, InsertOutcome, RecoveryInfo, StoreError, SubexprSummary, TermId,
};
pub use update::{Rewrite, UpdateOutcome};

/// The zero-dependency metrics/tracing crate backing
/// [`AlphaStore::obs_report`] and friends, re-exported so downstream
/// callers can name its types ([`Report`](alpha_obs::Report),
/// [`Event`](alpha_obs::Event), [`Subscriber`](alpha_obs::Subscriber))
/// without a separate dependency edge.
#[cfg(feature = "obs")]
pub use alpha_obs;
