//! Canonical representatives: turning a class's stored de Bruijn form back
//! into a named term.
//!
//! The store keeps one canonical [`DbArena`] per class (the de Bruijn form
//! of the first term that created the class — a *canonical form* because
//! all alpha-equivalent terms share it, per the standard theorem
//! cross-checked in `lambda_lang::debruijn`). This module rebuilds a named
//! [`ExprArena`] term from that form, inventing fresh binder names, so
//! callers can print, evaluate or re-ingest a representative.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use lambda_lang::symbol::Symbol;

enum Task {
    Visit(DbId),
    BuildLam(Symbol),
    LetBody(DbId),
    BuildLet(Symbol),
    BuildApp,
}

/// Rebuilds the de Bruijn term rooted at `root` as a named term in `dst`,
/// with a fresh name for every binder (so the result satisfies the
/// unique-binder invariant) and free variables interned by name.
///
/// Inverse of [`lambda_lang::debruijn::to_debruijn`] modulo alpha:
/// `rebuild_named(to_debruijn(e)) ≡α e`. Iterative and stack-safe, like
/// every traversal in this workspace.
///
/// # Examples
///
/// ```
/// use lambda_lang::{parse, alpha_eq, ExprArena};
/// use lambda_lang::debruijn::to_debruijn;
/// use alpha_store::canon::rebuild_named;
///
/// let mut a = ExprArena::new();
/// let e = parse(&mut a, r"\x. \y. x + y*7")?;
/// let (db, db_root) = to_debruijn(&a, e);
/// let mut b = ExprArena::new();
/// let rebuilt = rebuild_named(&db, db_root, &mut b);
/// assert!(alpha_eq(&a, e, &b, rebuilt));
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn rebuild_named(db: &DbArena, root: DbId, dst: &mut ExprArena) -> NodeId {
    // Innermost binder is the *last* element; BVar(i) resolves to
    // scope[len - 1 - i].
    let mut scope: Vec<Symbol> = Vec::new();
    let mut results: Vec<NodeId> = Vec::new();
    let mut stack = vec![Task::Visit(root)];

    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(n) => match db.node(n) {
                DbNode::BVar(i) => {
                    let sym = scope[scope.len() - 1 - i as usize];
                    results.push(dst.var(sym));
                }
                DbNode::FVar(s) => {
                    let sym = dst.intern(db.name(s));
                    results.push(dst.var(sym));
                }
                DbNode::Lit(l) => {
                    results.push(dst.lit(l));
                }
                DbNode::Lam(body) => {
                    let binder = dst.fresh("r");
                    scope.push(binder);
                    stack.push(Task::BuildLam(binder));
                    stack.push(Task::Visit(body));
                }
                DbNode::App(f, a) => {
                    stack.push(Task::BuildApp);
                    stack.push(Task::Visit(a));
                    stack.push(Task::Visit(f));
                }
                DbNode::Let(rhs, body) => {
                    // The rhs is outside the binder's scope; bind only for
                    // the body, mirroring `to_debruijn`.
                    stack.push(Task::LetBody(body));
                    stack.push(Task::Visit(rhs));
                }
            },
            Task::BuildLam(binder) => {
                scope.pop();
                let body = results.pop().expect("lam body");
                results.push(dst.lam(binder, body));
            }
            Task::LetBody(body) => {
                let binder = dst.fresh("r");
                scope.push(binder);
                stack.push(Task::BuildLet(binder));
                stack.push(Task::Visit(body));
            }
            Task::BuildLet(binder) => {
                scope.pop();
                let body = results.pop().expect("let body");
                let rhs = results.pop().expect("let rhs");
                results.push(dst.let_(binder, rhs, body));
            }
            Task::BuildApp => {
                let arg = results.pop().expect("app arg");
                let func = results.pop().expect("app func");
                results.push(dst.app(func, arg));
            }
        }
    }

    let out = results.pop().expect("rebuild produced a root");
    debug_assert!(results.is_empty());
    debug_assert!(scope.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::alpha::alpha_eq;
    use lambda_lang::debruijn::to_debruijn;
    use lambda_lang::parse::parse;
    use lambda_lang::uniquify::check_unique_binders;

    fn roundtrips(src: &str) {
        let mut a = ExprArena::new();
        let e = parse(&mut a, src).unwrap();
        let (db, db_root) = to_debruijn(&a, e);
        let mut b = ExprArena::new();
        let rebuilt = rebuild_named(&db, db_root, &mut b);
        assert!(alpha_eq(&a, e, &b, rebuilt), "not alpha-equal for {src}");
        assert!(
            check_unique_binders(&b, rebuilt).is_ok(),
            "duplicate binders for {src}"
        );
    }

    #[test]
    fn roundtrips_on_paper_examples() {
        for src in [
            r"\x. x + 7",
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*y",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            "let x = x in x", // rhs x is free, body x is bound
            r"\x. \x. x",     // shadowing
            "(a + (v+7)) * (v+7)",
        ] {
            roundtrips(src);
        }
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let mut a = ExprArena::new();
        let e = parse(&mut a, r"\x. \x. x").unwrap();
        let (db, db_root) = to_debruijn(&a, e);
        let mut b = ExprArena::new();
        let rebuilt = rebuild_named(&db, db_root, &mut b);
        // The rebuilt body variable must refer to the inner binder.
        let mut c = ExprArena::new();
        let expected = parse(&mut c, r"\p. \q. q").unwrap();
        assert!(alpha_eq(&b, rebuilt, &c, expected));
    }

    #[test]
    fn deep_rebuild_is_stack_safe() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..120_000 {
            e = a.lam(x, e);
        }
        let (db, db_root) = to_debruijn(&a, e);
        let mut b = ExprArena::new();
        let rebuilt = rebuild_named(&db, db_root, &mut b);
        assert_eq!(b.subtree_size(rebuilt), 120_001);
    }
}
