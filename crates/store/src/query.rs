//! The query surface the root-only store could not express: containment
//! lookups, per-term subexpression classes and occurrence counts.
//!
//! All three lean on the subexpression index maintained by
//! [`Granularity::Subexpressions`](crate::Granularity::Subexpressions)
//! stores: every subexpression of every ingested term (above the
//! `min_nodes` floor) is a confirmed member of some class, so "is this
//! pattern contained in the corpus?" is one hash probe plus one exact
//! canonical comparison — the same cost as a root lookup, over a bigger
//! index. On a [`Granularity::Roots`](crate::Granularity::Roots) store
//! the same queries still answer, but only about whole ingested terms
//! (nothing else was indexed).
//!
//! ```
//! use alpha_store::AlphaStore;
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: AlphaStore<u64> = AlphaStore::builder().subexpressions(1).build();
//! let mut arena = ExprArena::new();
//! let t = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
//! let outcome = store.insert(&arena, t);
//!
//! let pattern = parse(&mut arena, "v + 7").unwrap();
//! let class = store.contains(&arena, pattern).expect("contained");
//! assert_eq!(store.occurrences(class), 2);          // appears twice
//! assert!(store.subterm_classes(outcome.term).any(|c| c == class));
//! ```

use crate::store::{AlphaStore, ClassId, TermId};
use alpha_hash::combine::HashWord;
use lambda_lang::arena::{ExprArena, NodeId};

impl<H: HashWord> AlphaStore<H> {
    /// Does any ingested term **contain** a subexpression alpha-equivalent
    /// to the pattern at `root`? Returns the pattern's class if so. The
    /// query does not ingest anything.
    ///
    /// The pattern is treated as a standalone term: its free variables
    /// match subexpression occurrences whose variables are free *within
    /// the subexpression* under the same names — including variables bound
    /// further out in the containing term, which are free by name inside
    /// the subterm (the paper's subexpression semantics, §2.2).
    ///
    /// Completeness caveats: on a `Roots` store only whole ingested terms
    /// were indexed, so `contains` degrades to [`AlphaStore::lookup`]
    /// semantics; on a `Subexpressions { min_nodes }` store, patterns
    /// smaller than `min_nodes` can only match terms that were ingested
    /// whole (roots are always indexed, whatever their size).
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let store: AlphaStore<u64> = AlphaStore::builder().subexpressions(1).build();
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, r"foo (\x. x+7) bar").unwrap();
    /// store.insert(&arena, t);
    ///
    /// // An alpha-renamed copy of an inner lambda is *contained*…
    /// let pattern = parse(&mut arena, r"\q. q+7").unwrap();
    /// assert!(store.contains(&arena, pattern).is_some());
    /// // …but was never ingested as a term of its own.
    /// assert!(store.lookup(&arena, pattern).is_none());
    /// ```
    pub fn contains(&self, arena: &ExprArena, root: NodeId) -> Option<ClassId> {
        self.probe(arena, root, false)
    }

    /// [`AlphaStore::contains`] over many patterns at once, sharing one
    /// `Preparer` across all of them — the name-hash cache and traversal
    /// buffers are built once, not per pattern — and grouping probes so
    /// each shard's read lock is taken at most once. Answers come back in
    /// input order; none of the patterns is ingested.
    ///
    /// This is the right call shape for query-heavy services ("which of
    /// these N candidate rewrites already exist in the corpus?"): on the
    /// tracked benchmark corpus it probes several times faster than a loop
    /// of single [`AlphaStore::contains`] calls.
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let store: AlphaStore<u64> = AlphaStore::builder().subexpressions(1).build();
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
    /// store.insert(&arena, t);
    ///
    /// let patterns = [
    ///     parse(&mut arena, "v + 7").unwrap(),
    ///     parse(&mut arena, "v + 8").unwrap(),
    /// ];
    /// let found = store.contains_batch(&arena, &patterns);
    /// assert!(found[0].is_some());
    /// assert!(found[1].is_none());
    /// ```
    pub fn contains_batch(&self, arena: &ExprArena, patterns: &[NodeId]) -> Vec<Option<ClassId>> {
        self.probe_batch(arena, patterns, false)
    }

    /// The classes of every indexed subexpression of a previously ingested
    /// term — the term's own class always included — deduplicated and in
    /// ascending [`ClassId`] order. The result is a snapshot: the shard
    /// lock is released before the iterator is handed out.
    ///
    /// On a `Roots` store, the only indexed "subexpression" is the term
    /// itself, so the iterator yields exactly the term's class.
    ///
    /// # Panics
    ///
    /// Panics if `term` was not issued by this store.
    pub fn subterm_classes(&self, term: TermId) -> impl Iterator<Item = ClassId> {
        let shard = self.shards[term.shard as usize]
            .read()
            .expect("shard lock poisoned");
        let ids: Vec<ClassId> = if self.granularity().indexes_subexpressions() {
            let subs = &shard.term_subs[term.index as usize];
            debug_assert!(
                !subs.is_empty(),
                "subexpression-mode inserts always log at least the root's class"
            );
            subs.iter()
                .map(|&(bits, _)| ClassId::from_bits(bits))
                .collect()
        } else {
            // Roots mode keeps no per-term lists; recover the term's class
            // from the term log.
            vec![ClassId::from_bits(shard.terms[term.index as usize])]
        };
        ids.into_iter()
    }

    /// Total appearances of `class` across the corpus: whole-term inserts
    /// plus every indexed subexpression occurrence. On a `Roots` store
    /// this equals [`AlphaStore::members`].
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn occurrences(&self, class: ClassId) -> u64 {
        self.with_class(class, |c| c.occurrences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_hash::combine::HashScheme;
    use lambda_lang::parse::parse;

    fn sub_store(min_nodes: usize) -> AlphaStore<u64> {
        AlphaStore::builder()
            .scheme(HashScheme::new(0xA1FA))
            .shards(8)
            .subexpressions(min_nodes)
            .build()
    }

    #[test]
    fn contains_finds_subexpressions_modulo_alpha() {
        let store = sub_store(1);
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"foo (\x. x + 7) (v * 3)").unwrap();
        let outcome = store.insert(&arena, t);
        assert!(outcome.fresh);
        // 14 nodes (ops are curried applications), root excluded.
        assert_eq!(outcome.subs.indexed, 13);
        assert_eq!(outcome.subs.skipped_min_nodes, 0);

        // Alpha-renamed inner lambda: contained, not a root.
        let lam = parse(&mut arena, r"\p. p + 7").unwrap();
        assert!(store.contains(&arena, lam).is_some());
        assert!(store.lookup(&arena, lam).is_none());

        // The argument subterm and a leaf.
        let arg = parse(&mut arena, "v * 3").unwrap();
        assert!(store.contains(&arena, arg).is_some());
        let leaf = parse(&mut arena, "v").unwrap();
        assert!(store.contains(&arena, leaf).is_some());

        // Never-seen patterns.
        let miss = parse(&mut arena, r"\p. p + 8").unwrap();
        assert!(store.contains(&arena, miss).is_none());
        let wrong_free = parse(&mut arena, "w * 3").unwrap();
        assert!(store.contains(&arena, wrong_free).is_none());

        // The batched probe agrees pattern for pattern.
        let patterns = [lam, arg, leaf, miss, wrong_free, t];
        let batch = store.contains_batch(&arena, &patterns);
        for (i, &p) in patterns.iter().enumerate() {
            assert_eq!(batch[i], store.contains(&arena, p), "pattern {i}");
        }

        // The whole term is contained in itself, and is also a root.
        assert_eq!(store.contains(&arena, t), Some(outcome.class));
        assert_eq!(store.lookup(&arena, t), Some(outcome.class));
    }

    #[test]
    fn outer_bound_variables_are_free_by_name_inside_subterms() {
        // In \x. x + 1 the body subterm is "x + 1" with x free: a pattern
        // with free x matches it, a pattern with free y does not.
        let store = sub_store(1);
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + 1").unwrap();
        store.insert(&arena, t);
        let with_x = parse(&mut arena, "x + 1").unwrap();
        let with_y = parse(&mut arena, "y + 1").unwrap();
        assert!(store.contains(&arena, with_x).is_some());
        assert!(store.contains(&arena, with_y).is_none());
    }

    #[test]
    fn min_nodes_floor_limits_containment_but_not_roots() {
        let store = sub_store(3);
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
        let outcome = store.insert(&arena, t);
        // 10 nodes total. Proper subterms clearing the 3-node floor:
        // `add x` (3), `mul v` (3), `mul v 3` (5), `add x (mul v 3)` (9).
        assert_eq!(outcome.subs.indexed, 4);
        assert_eq!(outcome.subs.skipped_min_nodes, 5); // add, x, mul, v, 3

        let mul = parse(&mut arena, "v * 3").unwrap();
        assert!(store.contains(&arena, mul).is_some());
        // Tiny pattern: below the floor, not indexed.
        let leaf = parse(&mut arena, "v").unwrap();
        assert!(store.contains(&arena, leaf).is_none());
        // But a tiny term ingested as a root is always findable.
        let tiny_root = parse(&mut arena, "w").unwrap();
        store.insert(&arena, tiny_root);
        assert!(store.contains(&arena, tiny_root).is_some());
    }

    #[test]
    fn subterm_classes_cover_all_indexed_subexpressions() {
        let store = sub_store(1);
        let mut arena = ExprArena::new();
        // (v+7) + (v+7): the two identical subterms share one class.
        let t = parse(&mut arena, "(v + 7) + (v + 7)").unwrap();
        let outcome = store.insert(&arena, t);
        let classes: Vec<ClassId> = store.subterm_classes(outcome.term).collect();
        // 13 nodes; distinct classes: add, v, 7, `add v`, `add v 7`,
        // `add (add v 7)`, and the root — duplicates deduplicated.
        assert_eq!(classes.len(), 7);
        assert!(classes.contains(&outcome.class));
        assert!(classes.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");

        // Occurrences: v+7 appears twice as a subterm.
        let pat = parse(&mut arena, "v + 7").unwrap();
        let class = store.contains(&arena, pat).expect("indexed");
        assert_eq!(store.occurrences(class), 2);
        assert_eq!(store.members(class), 0); // never a whole-term insert
        assert_eq!(store.occurrences(outcome.class), 1);
        assert_eq!(store.members(outcome.class), 1);
    }

    #[test]
    fn roots_mode_queries_degrade_gracefully() {
        let store: AlphaStore<u64> = AlphaStore::new(HashScheme::new(5));
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + 7").unwrap();
        let outcome = store.insert(&arena, t);
        assert_eq!(outcome.subs, crate::store::SubexprSummary::default());

        // contains == lookup on a roots store.
        let body = parse(&mut arena, "x + 7").unwrap();
        assert!(store.contains(&arena, body).is_none());
        assert_eq!(store.contains(&arena, t), Some(outcome.class));

        // subterm_classes yields exactly the term's class.
        let classes: Vec<ClassId> = store.subterm_classes(outcome.term).collect();
        assert_eq!(classes, vec![outcome.class]);
        assert_eq!(
            store.occurrences(outcome.class),
            store.members(outcome.class)
        );
    }
}
