//! Corpus-level analytics and rewriting over a store-deduplicated set of
//! terms.
//!
//! Where [`crate::store`] answers "which of these terms are the same
//! modulo alpha?", this module answers two follow-up questions about a
//! whole corpus:
//!
//! * how much memory would the corpus need as a **shared DAG** with one
//!   node per alpha-equivalence class of subexpressions
//!   ([`corpus_shared_dag_size`], reusing
//!   [`alpha_hash::equiv::shared_dag_size`]), and
//! * what does the corpus look like after **cross-term CSE**, where a
//!   subexpression occurring in several different terms is bound once in
//!   a shared preamble ([`store_backed_cse`], built on
//!   [`alpha_hash::cse::cse_forest`]).

use crate::store::{AlphaStore, InsertOutcome};
use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::cse::{combine_corpus, cse_forest, CseConfig, ForestCse};
use alpha_hash::equiv::shared_dag_size;
use alpha_hash::hashed::hash_all_subexpressions;
use lambda_lang::arena::{ExprArena, NodeId};

/// Size of the whole corpus stored as a DAG with **one node per
/// alpha-equivalence class of subexpressions**, sharing across term
/// boundaries.
///
/// This is the cross-term generalisation of
/// [`alpha_hash::equiv::shared_dag_size`] (which it reuses): a
/// subexpression occurring in seventeen different terms — under any
/// binder names — is counted once. Comparing the result with the plain
/// node count of the corpus measures how much structure sharing modulo
/// alpha would save, the paper's §2 motivation.
///
/// Returns 0 for an empty corpus.
///
/// # Examples
///
/// ```
/// use alpha_hash::combine::HashScheme;
/// use alpha_store::corpus_shared_dag_size;
/// use lambda_lang::{parse, ExprArena};
///
/// let mut arena = ExprArena::new();
/// let t1 = parse(&mut arena, r"\x. x + 7").unwrap();
/// let t2 = parse(&mut arena, r"\y. y + 7").unwrap();
/// let scheme: HashScheme<u64> = HashScheme::default();
/// // Alpha-equivalent terms share every node: the DAG is one term's size.
/// assert_eq!(
///     corpus_shared_dag_size(&arena, &[t1, t2], &scheme),
///     arena.subtree_size(t1),
/// );
/// ```
pub fn corpus_shared_dag_size<H: HashWord>(
    arena: &ExprArena,
    roots: &[NodeId],
    scheme: &HashScheme<H>,
) -> usize {
    if roots.is_empty() {
        return 0;
    }
    // combine_corpus uniquifies as it copies (the hashing algorithms
    // require globally distinct binders, §2.2).
    let (combined, spine, overhead) = combine_corpus(arena, roots);
    let hashes = hash_all_subexpressions(&combined, spine, scheme);
    let dag = shared_dag_size(&combined, spine, &hashes);
    // The synthetic spine nodes are all distinct classes (each contains
    // the fresh head variable, which no input term can contain, and their
    // sizes strictly increase), so they contribute exactly `overhead`.
    dag - overhead
}

/// Result of [`store_backed_cse`].
#[derive(Debug)]
pub struct StoreBackedCse {
    /// Per input term, what the store did with it (input order).
    pub outcomes: Vec<InsertOutcome>,
    /// Indexes (into the input) of the terms that created a class — the
    /// representatives that went into CSE.
    pub unique_indices: Vec<usize>,
    /// Whole-term duplicates dropped before CSE ran.
    pub duplicates_dropped: usize,
    /// Cross-term CSE over the unique representatives. `forest.roots[k]`
    /// is the rewritten form of input term `unique_indices[k]`.
    pub forest: ForestCse,
}

/// Store-backed, cross-corpus common-subexpression elimination.
///
/// The per-program CSE of [`alpha_hash::cse`] deduplicates *within* one
/// term. This variant deduplicates *across* a corpus, in two stages:
///
/// 1. **Whole-term dedup** — every term is ingested into `store`;
///    alpha-duplicate terms merge into existing classes and drop out.
/// 2. **Cross-term CSE** — the surviving representatives run through
///    [`cse_forest`], so a subexpression shared by different terms is
///    hoisted into a single `let` in a common preamble.
///
/// The `store` is a live accumulator: calling this repeatedly with new
/// corpus slices keeps deduplicating against everything ingested before.
///
/// # Examples
///
/// ```
/// use alpha_store::{store_backed_cse, AlphaStore};
/// use alpha_hash::cse::CseConfig;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = AlphaStore::default();
/// let mut arena = ExprArena::new();
/// let corpus = [
///     parse(&mut arena, r"(v+7) * (v+7)").unwrap(),
///     parse(&mut arena, r"(w+7) * (w+7)").unwrap(), // different free var!
///     parse(&mut arena, r"(v+7) * (v+7)").unwrap(), // duplicate of [0]
///     parse(&mut arena, r"foo (v+7)").unwrap(),
/// ];
/// let result = store_backed_cse(&store, &arena, &corpus, CseConfig::default());
/// assert_eq!(result.duplicates_dropped, 1); // corpus[2]
/// assert_eq!(result.unique_indices, vec![0, 1, 3]);
/// // v+7 is shared across corpus[0] and corpus[3].
/// assert!(!result.forest.shared.is_empty());
/// ```
pub fn store_backed_cse<H: HashWord>(
    store: &AlphaStore<H>,
    arena: &ExprArena,
    roots: &[NodeId],
    config: CseConfig,
) -> StoreBackedCse {
    let outcomes = store.insert_batch(arena, roots);
    let unique_indices: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.fresh)
        .map(|(i, _)| i)
        .collect();
    let unique_roots: Vec<NodeId> = unique_indices.iter().map(|&i| roots[i]).collect();
    let forest = cse_forest(arena, &unique_roots, store.scheme(), config);
    StoreBackedCse {
        duplicates_dropped: roots.len() - unique_indices.len(),
        outcomes,
        unique_indices,
        forest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::eval::eval;
    use lambda_lang::parse::parse;

    #[test]
    fn dag_size_counts_cross_term_sharing_once() {
        let mut arena = ExprArena::new();
        // Three terms all containing v+7 (5 nodes: add, v, 7 leaves plus
        // two apps); the DAG shares one copy.
        let t1 = parse(&mut arena, "(v+7) * 2").unwrap();
        let t2 = parse(&mut arena, "(v+7) * 3").unwrap();
        let scheme: HashScheme<u64> = HashScheme::new(1);
        let dag = corpus_shared_dag_size(&arena, &[t1, t2], &scheme);
        let trees: usize = arena.subtree_size(t1) + arena.subtree_size(t2);
        assert!(dag < trees, "no sharing detected: dag={dag} trees={trees}");
        // Identical corpora collapse completely.
        let same = corpus_shared_dag_size(&arena, &[t1, t1, t1], &scheme);
        assert_eq!(same, corpus_shared_dag_size(&arena, &[t1], &scheme));
    }

    #[test]
    fn empty_corpus_is_size_zero() {
        let arena = ExprArena::new();
        let scheme: HashScheme<u64> = HashScheme::new(1);
        assert_eq!(corpus_shared_dag_size(&arena, &[], &scheme), 0);
    }

    #[test]
    fn store_backed_cse_drops_duplicates_and_shares() {
        let store: AlphaStore<u64> = AlphaStore::default();
        let mut arena = ExprArena::new();
        let corpus = [
            parse(&mut arena, "let q = 3 in (q + (q+7)) * (q+7)").unwrap(),
            parse(&mut arena, "let z = 3 in (z + (z+7)) * (z+7)").unwrap(),
            parse(&mut arena, "let a = 4 in a * a").unwrap(),
        ];
        let result = store_backed_cse(&store, &arena, &corpus, CseConfig::default());
        assert_eq!(result.duplicates_dropped, 1);
        assert_eq!(result.unique_indices, vec![0, 2]);
        assert_eq!(result.forest.roots.len(), 2);

        // Semantics preserved: each instantiated term evaluates as before.
        for (k, &i) in result.unique_indices.iter().enumerate() {
            let before = eval(&arena, corpus[i]).expect("closed input evaluates");
            let mut dst = ExprArena::new();
            let inst = result.forest.instantiate_into(k, &mut dst);
            let after = eval(&dst, inst).expect("instantiated output evaluates");
            assert!(before.observably_eq(&after), "term {i} changed meaning");
        }
    }

    #[test]
    fn repeated_calls_accumulate_in_the_store() {
        let store: AlphaStore<u64> = AlphaStore::default();
        let mut arena = ExprArena::new();
        let t1 = parse(&mut arena, r"\x. x + 1").unwrap();
        let first = store_backed_cse(&store, &arena, &[t1], CseConfig::default());
        assert_eq!(first.duplicates_dropped, 0);

        // The same term (alpha-renamed) in a later slice is a duplicate of
        // the *store*, not just of its own slice.
        let t2 = parse(&mut arena, r"\y. y + 1").unwrap();
        let second = store_backed_cse(&store, &arena, &[t2], CseConfig::default());
        assert_eq!(second.duplicates_dropped, 1);
        assert!(second.unique_indices.is_empty());
        assert_eq!(store.num_terms(), 2);
        assert_eq!(store.num_classes(), 1);
    }
}
