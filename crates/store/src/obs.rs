//! The store's instrumentation seam.
//!
//! Everything the hot paths touch goes through [`StoreObs`] (and its
//! WAL-side sibling [`WalObs`]), which has two shapes:
//!
//! - With the `obs` cargo feature (default): a real struct owning an
//!   `alpha-obs` [`Registry`](alpha_obs::Registry) of histograms,
//!   counters and gauges plus a [`Tracer`](alpha_obs::Tracer). Timed
//!   sections are bracketed by [`StoreObs::tick`], which reads the
//!   clock only while the runtime toggle is on; counters and length
//!   histograms record unconditionally (one relaxed atomic op), so
//!   reconciliation invariants hold whether or not timing is enabled.
//! - Without the feature: zero-sized types whose methods are inlined
//!   no-ops, so every call site compiles away entirely.
//!
//! **Lock-order rule:** obs recording never takes a store lock. Inside
//! a shard or canon-table critical section only wait-free operations
//! (atomic adds on counters/histograms, monotonic clock reads) are
//! permitted; tracer emissions — which take obs-internal mutexes —
//! happen after the store lock is released wherever practical, and are
//! ordering-safe regardless (store locks → obs internals is acyclic).
//! See `docs/ARCHITECTURE.md` ("instrumentation seam").

#[cfg(not(feature = "obs"))]
pub(crate) use disabled::*;
#[cfg(feature = "obs")]
pub(crate) use enabled::*;

#[cfg(feature = "obs")]
mod enabled {
    use alpha_obs::{
        Counter, Desc, Event, Gauge, Histogram, Registry, Report, Sample, Subscriber, Tracer,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    const fn desc(name: &'static str, help: &'static str, unit: &'static str) -> Desc {
        Desc { name, help, unit }
    }

    /// A started (or disarmed) timer, obtained from [`StoreObs::tick`]
    /// or [`WalObs::tick`] and consumed by the matching `rec_*` call.
    #[derive(Clone, Copy)]
    pub(crate) struct Tick(Option<Instant>);

    impl Tick {
        #[inline]
        fn elapsed_ns(self) -> Option<u64> {
            self.0.map(|s| s.elapsed().as_nanos() as u64)
        }
    }

    /// The store's live instruments. One per [`AlphaStore`]; handles
    /// are `Arc`s so the WAL side can share the relevant subset.
    ///
    /// [`AlphaStore`]: crate::AlphaStore
    pub(crate) struct StoreObs {
        recording: Arc<AtomicBool>,
        tracer: Tracer,
        ring: Arc<alpha_obs::RingSubscriber>,
        registry: Registry,
        // Latency histograms (ns).
        prepare_ns: Arc<Histogram>,
        prepare_nodes: Arc<Histogram>,
        shard_lock_wait_ns: Arc<Histogram>,
        apply_ns: Arc<Histogram>,
        wal_commit_ns: Arc<Histogram>,
        frontier_walk_nodes: Arc<Histogram>,
        probe_ns: Arc<Histogram>,
        snapshot_write_ns: Arc<Histogram>,
        recovery_snapshot_load_ns: Arc<Histogram>,
        recovery_replay_ns: Arc<Histogram>,
        // Counters.
        merge_confirm_ref: Arc<Counter>,
        merge_confirm_walk: Arc<Counter>,
        merge_confirm_cached: Arc<Counter>,
        hash_nodes: Arc<Counter>,
        name_cache_misses: Arc<Counter>,
        updates_applied: Arc<Counter>,
        spine_nodes_rehashed: Arc<Counter>,
        // Reliability instruments (health state machine, retry loop,
        // auto-checkpoint).
        health: Arc<Gauge>,
        wal_retries: Arc<Counter>,
        auto_checkpoints: Arc<Counter>,
        // WAL-side handles, shared with [`WalObs`].
        wal: Arc<WalShared>,
    }

    /// The subset of instruments the WAL records into, shared between
    /// the store's registry and the `Wal` behind its mutex.
    pub(crate) struct WalShared {
        recording: Arc<AtomicBool>,
        append_ns: Arc<Histogram>,
        fsync_ns: Arc<Histogram>,
        bytes_since_checkpoint: Arc<Gauge>,
        persist_errors: Arc<Counter>,
    }

    impl StoreObs {
        pub(crate) fn new() -> Self {
            let mut registry = Registry::new();
            let prepare_ns = registry.histogram(desc(
                "alpha_store_prepare_ns",
                "Latency of hashing+canonising one term at ingest",
                "ns",
            ));
            let prepare_nodes = registry.histogram(desc(
                "alpha_store_prepare_nodes",
                "Nodes per prepared term at ingest",
                "nodes",
            ));
            let shard_lock_wait_ns = registry.histogram(desc(
                "alpha_store_shard_lock_wait_ns",
                "Time spent waiting to acquire a shard lock",
                "ns",
            ));
            let apply_ns = registry.histogram(desc(
                "alpha_store_apply_ns",
                "Latency of applying one prepared chunk under shard locks",
                "ns",
            ));
            let wal_commit_ns = registry.histogram(desc(
                "alpha_store_wal_commit_ns",
                "Latency of one WAL group commit (lock + append + fsync)",
                "ns",
            ));
            let wal_append_ns = registry.histogram(desc(
                "alpha_store_wal_append_ns",
                "Latency of the buffered frame write inside a group commit",
                "ns",
            ));
            let wal_fsync_ns = registry.histogram(desc(
                "alpha_store_wal_fsync_ns",
                "Latency of the fsync inside a group commit",
                "ns",
            ));
            let frontier_walk_nodes = registry.histogram(desc(
                "alpha_store_frontier_walk_nodes",
                "Structural-walk length when a merge is confirmed without an interned ref",
                "nodes",
            ));
            let probe_ns = registry.histogram(desc(
                "alpha_store_probe_ns",
                "Latency of one containment probe (prepared term to verdict)",
                "ns",
            ));
            let snapshot_write_ns = registry.histogram(desc(
                "alpha_store_snapshot_write_ns",
                "Latency of writing one snapshot file",
                "ns",
            ));
            let recovery_snapshot_load_ns = registry.histogram(desc(
                "alpha_store_recovery_snapshot_load_ns",
                "Recovery phase: snapshot read+decode",
                "ns",
            ));
            let recovery_replay_ns = registry.histogram(desc(
                "alpha_store_recovery_replay_ns",
                "Recovery phase: WAL tail replay",
                "ns",
            ));
            let merge_confirm_ref = registry.counter(desc(
                "alpha_store_merge_confirm_ref",
                "Merges confirmed by O(1) interned-ref comparison",
                "merges",
            ));
            let merge_confirm_walk = registry.counter(desc(
                "alpha_store_merge_confirm_walk",
                "Merges confirmed by structural frontier walk",
                "merges",
            ));
            let merge_confirm_cached = registry.counter(desc(
                "alpha_store_merge_confirm_cached",
                "Merges confirmed via the hot-class cache (intern short-circuit)",
                "merges",
            ));
            let hash_nodes = registry.counter(desc(
                "alpha_store_hash_nodes",
                "Nodes pushed through the e-summary hasher",
                "nodes",
            ));
            let name_cache_misses = registry.counter(desc(
                "alpha_store_name_cache_misses",
                "Variable-name hash cache misses in the summariser",
                "misses",
            ));
            let updates_applied = registry.counter(desc(
                "alpha_store_updates_applied",
                "In-place term rewrites applied through AlphaStore::update",
                "updates",
            ));
            let spine_nodes_rehashed = registry.counter(desc(
                "alpha_store_spine_nodes_rehashed",
                "Nodes re-hashed by incremental updates (patch + spine to root)",
                "nodes",
            ));
            let persist_errors = registry.counter(desc(
                "alpha_store_persist_errors",
                "I/O errors surfaced by the persistence layer",
                "errors",
            ));
            let bytes_since_checkpoint = registry.gauge(desc(
                "alpha_store_wal_bytes_since_checkpoint",
                "WAL bytes appended since the last checkpoint",
                "bytes",
            ));
            let health = registry.gauge(desc(
                "alpha_store_health",
                "Store health state: 0 healthy, 1 degraded, 2 read-only",
                "state",
            ));
            let wal_retries = registry.counter(desc(
                "alpha_store_wal_retries",
                "WAL append attempts retried after a transient failure",
                "retries",
            ));
            let auto_checkpoints = registry.counter(desc(
                "alpha_store_auto_checkpoints",
                "Checkpoints triggered by the WAL watermarks",
                "checkpoints",
            ));
            let recording = Arc::new(AtomicBool::new(true));
            let (tracer, ring) = Tracer::with_ring();
            let wal = Arc::new(WalShared {
                recording: recording.clone(),
                append_ns: wal_append_ns,
                fsync_ns: wal_fsync_ns,
                bytes_since_checkpoint,
                persist_errors,
            });
            StoreObs {
                recording,
                tracer,
                ring,
                registry,
                prepare_ns,
                prepare_nodes,
                shard_lock_wait_ns,
                apply_ns,
                wal_commit_ns,
                frontier_walk_nodes,
                probe_ns,
                snapshot_write_ns,
                recovery_snapshot_load_ns,
                recovery_replay_ns,
                merge_confirm_ref,
                merge_confirm_walk,
                merge_confirm_cached,
                hash_nodes,
                name_cache_misses,
                updates_applied,
                spine_nodes_rehashed,
                health,
                wal_retries,
                auto_checkpoints,
                wal,
            }
        }

        /// Start a timer; reads the clock only while recording is on.
        #[inline]
        pub(crate) fn tick(&self) -> Tick {
            if self.recording.load(Ordering::Relaxed) {
                Tick(Some(Instant::now()))
            } else {
                Tick(None)
            }
        }

        /// Runtime toggle for everything that costs a clock read or an
        /// emission. Counters keep recording either way.
        pub(crate) fn set_enabled(&self, on: bool) {
            self.recording.store(on, Ordering::Relaxed);
            self.tracer.set_enabled(on);
        }

        pub(crate) fn enabled(&self) -> bool {
            self.recording.load(Ordering::Relaxed)
        }

        pub(crate) fn recent_events(&self) -> Vec<Event> {
            self.ring.recent()
        }

        pub(crate) fn set_subscriber(&self, s: Arc<dyn Subscriber>) {
            self.tracer.set_subscriber(s);
        }

        /// A WAL-side handle sharing this store's instruments.
        pub(crate) fn wal_obs(&self) -> WalObs {
            WalObs {
                inner: Some(self.wal.clone()),
            }
        }

        pub(crate) fn report(&self, extras: Vec<Sample>) -> Report {
            self.registry.report(extras)
        }

        // ---- hot-path recorders -------------------------------------

        #[inline]
        pub(crate) fn rec_prepare(&self, t: Tick, nodes: u64) {
            self.prepare_nodes.record(nodes);
            if let Some(ns) = t.elapsed_ns() {
                self.prepare_ns.record(ns);
            }
        }

        #[inline]
        pub(crate) fn rec_shard_lock_wait(&self, t: Tick) {
            if let Some(ns) = t.elapsed_ns() {
                self.shard_lock_wait_ns.record(ns);
            }
        }

        #[inline]
        pub(crate) fn rec_apply(&self, t: Tick, entries: u64) {
            if let Some(ns) = t.elapsed_ns() {
                self.apply_ns.record(ns);
                self.tracer.event("store.apply_chunk", ns, entries);
            }
        }

        #[inline]
        pub(crate) fn rec_wal_commit(&self, t: Tick, records: u64) {
            if let Some(ns) = t.elapsed_ns() {
                self.wal_commit_ns.record(ns);
                self.tracer.event("store.wal_commit", ns, records);
            }
        }

        #[inline]
        pub(crate) fn rec_probe(&self, t: Tick) {
            if let Some(ns) = t.elapsed_ns() {
                self.probe_ns.record(ns);
            }
        }

        pub(crate) fn rec_snapshot_write(&self, t: Tick, bytes: u64) {
            if let Some(ns) = t.elapsed_ns() {
                self.snapshot_write_ns.record(ns);
                self.tracer.event("store.snapshot_write", ns, bytes);
            }
        }

        /// Recovery phases are timed before the store (and thus this
        /// registry) exists, so they arrive as raw durations.
        pub(crate) fn rec_recovery(&self, snapshot_load_ns: u64, replay_ns: u64) {
            self.recovery_snapshot_load_ns.record(snapshot_load_ns);
            self.recovery_replay_ns.record(replay_ns);
        }

        /// Merge confirmed by O(1) ref compare. Called under a shard
        /// lock: atomic add only.
        #[inline]
        pub(crate) fn confirm_ref(&self) {
            self.merge_confirm_ref.inc();
        }

        /// Merge confirmed by a structural walk of `steps` nodes.
        /// Called under a shard lock: atomic adds only.
        #[inline]
        pub(crate) fn confirm_walk(&self, steps: u64) {
            self.merge_confirm_walk.inc();
            self.frontier_walk_nodes.record(steps);
        }

        /// Merge confirmed via the hot-class cache: the candidate's hash
        /// hit a recently-merged class and the intern short-circuit
        /// ref-matched, skipping the structural frontier walk. Atomic
        /// add only.
        #[inline]
        pub(crate) fn confirm_cached(&self) {
            self.merge_confirm_cached.inc();
        }

        /// Fold in the summariser's per-batch work counters.
        #[inline]
        pub(crate) fn add_hash_counters(&self, nodes: u64, name_misses: u64) {
            self.hash_nodes.add(nodes);
            self.name_cache_misses.add(name_misses);
        }

        /// One incremental update landed, having re-hashed `spine_nodes`
        /// nodes (the new subtree plus the path to the root).
        #[inline]
        pub(crate) fn rec_update(&self, spine_nodes: u64) {
            self.updates_applied.inc();
            self.spine_nodes_rehashed.add(spine_nodes);
        }

        // ---- reliability recorders ----------------------------------

        /// A persistence error surfaced outside the WAL's own recording
        /// (snapshot failures, checkpoint failures). Shares the
        /// `alpha_store_persist_errors` counter with [`WalObs::error`].
        #[inline]
        pub(crate) fn persist_error(&self) {
            self.wal.persist_errors.inc();
        }

        /// One WAL append attempt was retried after a transient failure.
        #[inline]
        pub(crate) fn rec_wal_retry(&self) {
            self.wal_retries.inc();
        }

        /// One checkpoint was triggered by a WAL watermark.
        #[inline]
        pub(crate) fn rec_auto_checkpoint(&self) {
            self.auto_checkpoints.inc();
        }

        /// Publish a health transition: the gauge tracks the current
        /// state (0 healthy, 1 degraded, 2 read-only) and the trace ring
        /// gets one event per transition. Called from the health state
        /// machine only — never inside a shard critical section, though
        /// the WAL mutex may be held (store locks → obs internals is the
        /// documented acyclic order).
        pub(crate) fn rec_health(&self, event: &'static str, state: u64) {
            self.health.set(state);
            self.tracer.event(event, 0, state);
        }
    }

    /// The WAL's slice of the store's instruments. `Default` is the
    /// detached state (a WAL opened before / without a store).
    #[derive(Clone, Default)]
    pub(crate) struct WalObs {
        inner: Option<Arc<WalShared>>,
    }

    impl std::fmt::Debug for WalObs {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WalObs")
                .field("attached", &self.inner.is_some())
                .finish()
        }
    }

    impl WalObs {
        #[inline]
        pub(crate) fn tick(&self) -> Tick {
            match &self.inner {
                Some(w) if w.recording.load(Ordering::Relaxed) => Tick(Some(Instant::now())),
                _ => Tick(None),
            }
        }

        #[inline]
        pub(crate) fn rec_append(&self, t: Tick) {
            if let (Some(w), Some(ns)) = (&self.inner, t.elapsed_ns()) {
                w.append_ns.record(ns);
            }
        }

        #[inline]
        pub(crate) fn rec_fsync(&self, t: Tick) {
            if let (Some(w), Some(ns)) = (&self.inner, t.elapsed_ns()) {
                w.fsync_ns.record(ns);
            }
        }

        #[inline]
        pub(crate) fn add_bytes(&self, n: u64) {
            if let Some(w) = &self.inner {
                w.bytes_since_checkpoint.add(n);
            }
        }

        #[inline]
        pub(crate) fn reset_bytes(&self) {
            if let Some(w) = &self.inner {
                w.bytes_since_checkpoint.set(0);
            }
        }

        #[inline]
        pub(crate) fn error(&self) {
            if let Some(w) = &self.inner {
                w.persist_errors.inc();
            }
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    //! No-op stand-ins: every method inlines to nothing, so the
    //! instrumented call sites vanish when the feature is off.
    #![allow(dead_code)]

    #[derive(Clone, Copy)]
    pub(crate) struct Tick;

    pub(crate) struct StoreObs;

    impl StoreObs {
        #[inline(always)]
        pub(crate) fn new() -> Self {
            StoreObs
        }
        #[inline(always)]
        pub(crate) fn tick(&self) -> Tick {
            Tick
        }
        #[inline(always)]
        pub(crate) fn rec_prepare(&self, _t: Tick, _nodes: u64) {}
        #[inline(always)]
        pub(crate) fn rec_shard_lock_wait(&self, _t: Tick) {}
        #[inline(always)]
        pub(crate) fn rec_apply(&self, _t: Tick, _entries: u64) {}
        #[inline(always)]
        pub(crate) fn rec_wal_commit(&self, _t: Tick, _records: u64) {}
        #[inline(always)]
        pub(crate) fn rec_probe(&self, _t: Tick) {}
        #[inline(always)]
        pub(crate) fn rec_snapshot_write(&self, _t: Tick, _bytes: u64) {}
        #[inline(always)]
        pub(crate) fn rec_recovery(&self, _snapshot_load_ns: u64, _replay_ns: u64) {}
        #[inline(always)]
        pub(crate) fn confirm_ref(&self) {}
        #[inline(always)]
        pub(crate) fn confirm_walk(&self, _steps: u64) {}
        #[inline(always)]
        pub(crate) fn confirm_cached(&self) {}
        #[inline(always)]
        pub(crate) fn add_hash_counters(&self, _nodes: u64, _name_misses: u64) {}
        #[inline(always)]
        pub(crate) fn rec_update(&self, _spine_nodes: u64) {}
        #[inline(always)]
        pub(crate) fn persist_error(&self) {}
        #[inline(always)]
        pub(crate) fn rec_wal_retry(&self) {}
        #[inline(always)]
        pub(crate) fn rec_auto_checkpoint(&self) {}
        #[inline(always)]
        pub(crate) fn rec_health(&self, _event: &'static str, _state: u64) {}
        #[inline(always)]
        pub(crate) fn wal_obs(&self) -> WalObs {
            WalObs
        }
    }

    #[derive(Clone, Copy, Debug, Default)]
    pub(crate) struct WalObs;

    impl WalObs {
        #[inline(always)]
        pub(crate) fn tick(&self) -> Tick {
            Tick
        }
        #[inline(always)]
        pub(crate) fn rec_append(&self, _t: Tick) {}
        #[inline(always)]
        pub(crate) fn rec_fsync(&self, _t: Tick) {}
        #[inline(always)]
        pub(crate) fn add_bytes(&self, _n: u64) {}
        #[inline(always)]
        pub(crate) fn reset_bytes(&self) {}
        #[inline(always)]
        pub(crate) fn error(&self) {}
    }
}
