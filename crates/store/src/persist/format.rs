//! The versioned, endian-fixed binary format shared by snapshots and the
//! write-ahead log.
//!
//! Everything on disk is **little-endian, fixed-width**, hand-rolled over
//! `std::io` (the build environment vendors no serialization crates). The
//! byte-level layout is specified in `docs/PERSISTENCE_FORMAT.md`; a unit
//! test in this module asserts that the magic numbers and version constant
//! documented there are exactly the ones compiled in, so the spec cannot
//! silently drift from the code.
//!
//! **Format v3** (this version) adds rewrite **delta records** to the
//! WAL — `AlphaStore::update` logs the rewritten term as its old root
//! plus the spine path and the patch canon, not as a full re-ingest —
//! and widens the snapshot's per-term bookkeeping to full `ClassId`
//! bits with per-class occurrence multiplicities (an updated term's
//! class may live in a different shard than the term id, and exact
//! un-indexing needs the counts). **Format v2** stored canonical
//! structure as shared DAGs: a snapshot carries one node table (the
//! class-reachable sub-DAG, deduplicated) with classes addressing
//! positions in it, and a WAL record carries one node-deduplicated DAG
//! with its entries addressing positions — mirroring the in-memory
//! hash-consed canon table (`crate::dag`); v3 keeps all of that.
//! **Format v1** files (standalone canonical tree per class / per
//! record entry) still *decode* through shims, as do v2 files, so older
//! stores open and are migrated by the recovery checkpoint; only v3 is
//! written.
//!
//! Three layers live here:
//!
//! * **primitives** — `put_*`/`take_*` for the fixed-width integers, byte
//!   strings, hash words (always serialized as two 64-bit lanes, whatever
//!   the in-memory width) and [`Granularity`];
//! * **CRC-32** — the IEEE polynomial, used both as the whole-snapshot
//!   checksum and as the per-record WAL frame check;
//! * **structure codecs** — shared-DAG node runs (`put_dag`/`take_dag`,
//!   represented in memory as a [`DbArena`], which holds DAGs as well as
//!   trees), and the `RawRecord` insert records the WAL replays.
//!
//! Decoding never panics on malformed input: every `take_*` returns
//! [`PersistError::Corrupt`] on truncation or bad tags, which is what lets
//! recovery treat a torn WAL tail as an expected condition rather than a
//! crash. In particular child references must point at already-decoded
//! positions, so no decoded structure can contain a cycle.

use crate::granularity::Granularity;
use crate::persist::PersistError;
use alpha_hash::combine::HashWord;
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use lambda_lang::literal::Literal;
use lambda_lang::symbol::Symbol;

/// Magic bytes opening a snapshot file (`docs/PERSISTENCE_FORMAT.md`).
///
/// ```
/// assert_eq!(alpha_store::persist::format::SNAPSHOT_MAGIC, *b"AHSNAP01");
/// ```
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AHSNAP01";

/// Magic bytes opening a write-ahead-log file.
///
/// ```
/// assert_eq!(alpha_store::persist::format::WAL_MAGIC, *b"AHWAL001");
/// ```
pub const WAL_MAGIC: [u8; 8] = *b"AHWAL001";

/// Format version written into every header. Bumped on **any** layout
/// change — including changes to the hash combiners in
/// [`alpha_hash::combine`], since persisted content addresses must keep
/// meaning what they meant. Writers emit only this version; readers
/// additionally accept [`COMPAT_VERSION`] through [`FORMAT_VERSION`]` -
/// 1` through explicit decode shims.
pub const FORMAT_VERSION: u16 = 3;

/// The oldest version readers still decode (read-only — recovery's
/// checkpoint rewrites such stores at [`FORMAT_VERSION`]). Version 1
/// stored one standalone canonical tree per class and per WAL record
/// entry, with no structure sharing and no group-commit markers.
/// Version 2 shared DAGs but had no delta records, u32 same-shard term
/// pointers, and no per-term occurrence multiplicities.
pub const COMPAT_VERSION: u16 = 1;

/// `true` when `version` is one this build can decode: the current
/// format or any compatibility version behind it.
pub(crate) fn version_supported(version: u16) -> bool {
    (COMPAT_VERSION..=FORMAT_VERSION).contains(&version)
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

fn corrupt(context: &str) -> PersistError {
    PersistError::Corrupt {
        context: context.to_owned(),
    }
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string fits u32"));
    out.extend_from_slice(s.as_bytes());
}

/// A hash word is always serialized as its two 64-bit lanes (16 bytes),
/// whatever the in-memory width; the header's `hash_bits` field is what
/// fixes the width, and readers reject a mismatch before decoding any
/// hash. This keeps record layouts identical across widths.
pub(crate) fn put_hash<H: HashWord>(out: &mut Vec<u8>, h: H) {
    let (lo, hi) = h.to_lanes();
    put_u64(out, lo);
    put_u64(out, hi);
}

pub(crate) fn take_u8(input: &mut &[u8]) -> Result<u8, PersistError> {
    let (&v, rest) = input.split_first().ok_or_else(|| corrupt("u8"))?;
    *input = rest;
    Ok(v)
}

pub(crate) fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], PersistError> {
    if input.len() < n {
        return Err(corrupt("byte run"));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

pub(crate) fn take_u16(input: &mut &[u8]) -> Result<u16, PersistError> {
    Ok(u16::from_le_bytes(
        take_bytes(input, 2)?.try_into().unwrap(),
    ))
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Result<u32, PersistError> {
    Ok(u32::from_le_bytes(
        take_bytes(input, 4)?.try_into().unwrap(),
    ))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Result<u64, PersistError> {
    Ok(u64::from_le_bytes(
        take_bytes(input, 8)?.try_into().unwrap(),
    ))
}

pub(crate) fn take_str(input: &mut &[u8]) -> Result<String, PersistError> {
    let len = take_u32(input)? as usize;
    let bytes = take_bytes(input, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("utf-8 name"))
}

pub(crate) fn take_hash<H: HashWord>(input: &mut &[u8]) -> Result<H, PersistError> {
    let lo = take_u64(input)?;
    let hi = take_u64(input)?;
    Ok(H::from_lanes(lo, hi))
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected)
// ---------------------------------------------------------------------

/// Slice-by-8 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; table `k` advances a byte through `k` additional zero bytes, so
/// eight lanes combine to process 8 input bytes per iteration. WAL framing
/// checksums every ingested byte, so this sits on the durable ingest hot
/// path.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the integrity check on every WAL record
/// frame and on the snapshot body. Slice-by-8 for throughput.
///
/// ```
/// // The standard check value for the IEEE polynomial.
/// assert_eq!(alpha_store::persist::format::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Granularity
// ---------------------------------------------------------------------

const GRANULARITY_ROOTS: u8 = 0;
const GRANULARITY_SUBEXPRESSIONS: u8 = 1;

pub(crate) fn put_granularity(out: &mut Vec<u8>, g: Granularity) {
    match g {
        Granularity::Roots => {
            put_u8(out, GRANULARITY_ROOTS);
            put_u64(out, 0);
        }
        Granularity::Subexpressions { min_nodes } => {
            put_u8(out, GRANULARITY_SUBEXPRESSIONS);
            put_u64(out, min_nodes as u64);
        }
    }
}

pub(crate) fn take_granularity(input: &mut &[u8]) -> Result<Granularity, PersistError> {
    let tag = take_u8(input)?;
    let min_nodes = take_u64(input)?;
    match tag {
        GRANULARITY_ROOTS => Ok(Granularity::Roots),
        GRANULARITY_SUBEXPRESSIONS => Ok(Granularity::Subexpressions {
            min_nodes: usize::try_from(min_nodes).map_err(|_| corrupt("min_nodes"))?,
        }),
        _ => Err(corrupt("granularity tag")),
    }
}

// ---------------------------------------------------------------------
// Shared-DAG node runs (canonical structure)
// ---------------------------------------------------------------------

const NODE_BVAR: u8 = 0;
const NODE_FVAR: u8 = 1;
const NODE_LAM: u8 = 2;
const NODE_APP: u8 = 3;
const NODE_LET: u8 = 4;
const NODE_LIT: u8 = 5;

const LIT_I64: u8 = 1;
const LIT_F64: u8 = 2;
const LIT_BOOL: u8 = 3;

/// Encodes a shared-DAG node run: the free-variable name table (in symbol
/// order, so re-interning on decode reproduces identical symbol indices),
/// then the nodes in arena order. Arena order is construction order, so
/// every child position precedes its parent — a topological emission that
/// decoders enforce, which is also what makes decoded structures provably
/// acyclic. The arena may be a tree (one use per node) or a DAG (shared
/// children); the encoding is the same.
pub(crate) fn put_dag(out: &mut Vec<u8>, dag: &DbArena) {
    put_u32(out, u32::try_from(dag.names_len()).expect("names fit u32"));
    for name in dag.names() {
        put_str(out, name);
    }
    put_u32(out, u32::try_from(dag.len()).expect("nodes fit u32"));
    for node in dag.nodes() {
        match node {
            DbNode::BVar(index) => {
                put_u8(out, NODE_BVAR);
                put_u32(out, index);
            }
            DbNode::FVar(sym) => {
                put_u8(out, NODE_FVAR);
                put_u32(out, sym.index());
            }
            DbNode::Lam(body) => {
                put_u8(out, NODE_LAM);
                put_u32(out, body.index() as u32);
            }
            DbNode::App(fun, arg) => {
                put_u8(out, NODE_APP);
                put_u32(out, fun.index() as u32);
                put_u32(out, arg.index() as u32);
            }
            DbNode::Let(rhs, body) => {
                put_u8(out, NODE_LET);
                put_u32(out, rhs.index() as u32);
                put_u32(out, body.index() as u32);
            }
            DbNode::Lit(lit) => {
                put_u8(out, NODE_LIT);
                let (kind, payload) = match lit {
                    Literal::I64(v) => (LIT_I64, v as u64),
                    Literal::F64Bits(bits) => (LIT_F64, bits),
                    Literal::Bool(b) => (LIT_BOOL, b as u64),
                };
                put_u8(out, kind);
                put_u64(out, payload);
            }
        }
    }
}

/// Decodes a shared-DAG node run. Children are resolved through the ids
/// the rebuilt arena actually issued, so a run whose child references run
/// ahead of construction order is rejected as corrupt, never misread —
/// and the result is guaranteed acyclic.
pub(crate) fn take_dag(input: &mut &[u8]) -> Result<DbArena, PersistError> {
    let mut arena = DbArena::new();
    let name_count = take_u32(input)? as usize;
    for _ in 0..name_count {
        let name = take_str(input)?;
        arena.intern(&name);
    }
    let node_count = take_u32(input)? as usize;
    let mut ids: Vec<DbId> = Vec::with_capacity(node_count.min(1 << 20));
    let child = |ids: &[DbId], raw: u32| -> Result<DbId, PersistError> {
        ids.get(raw as usize)
            .copied()
            .ok_or_else(|| corrupt("child id ahead of construction order"))
    };
    for _ in 0..node_count {
        let node = match take_u8(input)? {
            NODE_BVAR => DbNode::BVar(take_u32(input)?),
            NODE_FVAR => {
                let index = take_u32(input)?;
                if index as usize >= name_count {
                    return Err(corrupt("free-variable symbol out of range"));
                }
                DbNode::FVar(Symbol::from_index(index))
            }
            NODE_LAM => DbNode::Lam(child(&ids, take_u32(input)?)?),
            NODE_APP => {
                let fun = child(&ids, take_u32(input)?)?;
                let arg = child(&ids, take_u32(input)?)?;
                DbNode::App(fun, arg)
            }
            NODE_LET => {
                let rhs = child(&ids, take_u32(input)?)?;
                let body = child(&ids, take_u32(input)?)?;
                DbNode::Let(rhs, body)
            }
            NODE_LIT => {
                let kind = take_u8(input)?;
                let payload = take_u64(input)?;
                DbNode::Lit(match kind {
                    LIT_I64 => Literal::I64(payload as i64),
                    LIT_F64 => Literal::F64Bits(payload),
                    LIT_BOOL => Literal::Bool(payload != 0),
                    _ => return Err(corrupt("literal kind")),
                })
            }
            _ => return Err(corrupt("node tag")),
        };
        ids.push(arena.push(node));
    }
    Ok(arena)
}

/// Encodes one canonical term (the v1 class/entry layout): a node run
/// plus a root id. v1 is never *written* to disk anymore; the encoder is
/// kept for the round-trip tests that pin the compatibility shims.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn put_canon(out: &mut Vec<u8>, canon: &DbArena, root: DbId) {
    put_dag(out, canon);
    put_u32(out, root.index() as u32);
}

/// Decodes one canonical term (node run + root id) — the v1 class/entry
/// layout.
pub(crate) fn take_canon(input: &mut &[u8]) -> Result<(DbArena, DbId), PersistError> {
    let arena = take_dag(input)?;
    let root_raw = take_u32(input)? as usize;
    if root_raw >= arena.len() {
        return Err(corrupt("root id out of range"));
    }
    Ok((arena, DbId::from_index(root_raw)))
}

// ---------------------------------------------------------------------
// Insert records (the WAL payload)
// ---------------------------------------------------------------------

/// One decoded record entry: a content address plus the position of its
/// canonical root inside the record's node run.
#[derive(Debug)]
pub(crate) struct RawEntry<H> {
    /// The alpha-invariant hash (content address).
    pub hash: H,
    /// Root of this entry's canonical form within the record's node run.
    pub pos: DbId,
    /// Tree node count of the entry.
    pub node_count: u64,
    /// Occurrences of this entry within the ingested term (1 for roots
    /// and for every v1 entry).
    pub multiplicity: u32,
}

/// One decoded insert record: a node-deduplicated canonical DAG shared by
/// all of the record's entries, the root entry, the distinct indexed
/// subexpression entries, and the `min_nodes` skip count. A complete,
/// replayable description of what `insert` did — recovery re-interns the
/// DAG and re-runs the insert through the normal ingest path, so every
/// replayed merge is re-confirmed exactly like a live insert.
#[derive(Debug)]
pub(crate) struct RawRecord<H> {
    /// The record's canonical structure (a DAG: entries share nodes).
    pub canon: DbArena,
    /// The whole-term entry.
    pub root: RawEntry<H>,
    /// Distinct indexed proper subexpressions with multiplicities.
    pub subs: Vec<RawEntry<H>>,
    /// Proper subexpression occurrences skipped by the `min_nodes` floor.
    pub skipped: u64,
}

/// Encodes one v2 insert record: the shared node run, then the root entry
/// `(hash, pos, node_count)`, then each sub entry with its multiplicity,
/// then the skip count. `positions` addresses `dag`.
pub(crate) fn put_record_v2<H: HashWord>(
    out: &mut Vec<u8>,
    dag: &DbArena,
    root: (H, DbId, u64),
    subs: &[(H, DbId, u64, u32)],
    skipped: u64,
) {
    put_dag(out, dag);
    put_hash(out, root.0);
    put_u32(out, root.1.index() as u32);
    put_u64(out, root.2);
    put_u32(out, u32::try_from(subs.len()).expect("sub count fits u32"));
    for &(hash, pos, node_count, multiplicity) in subs {
        put_hash(out, hash);
        put_u32(out, pos.index() as u32);
        put_u64(out, node_count);
        put_u32(out, multiplicity);
    }
    put_u64(out, skipped);
}

/// Decodes one v2 insert record.
pub(crate) fn take_record_v2<H: HashWord>(input: &mut &[u8]) -> Result<RawRecord<H>, PersistError> {
    let canon = take_dag(input)?;
    let root = {
        let hash = take_hash(input)?;
        let pos_raw = take_u32(input)? as usize;
        if pos_raw >= canon.len() {
            return Err(corrupt("entry root out of range"));
        }
        let node_count = take_u64(input)?;
        RawEntry {
            hash,
            pos: DbId::from_index(pos_raw),
            node_count,
            multiplicity: 1,
        }
    };
    let sub_count = take_u32(input)? as usize;
    let mut subs = Vec::with_capacity(sub_count.min(1 << 16));
    for _ in 0..sub_count {
        let hash = take_hash(input)?;
        let pos_raw = take_u32(input)? as usize;
        if pos_raw >= canon.len() {
            return Err(corrupt("entry root out of range"));
        }
        let node_count = take_u64(input)?;
        let multiplicity = take_u32(input)?;
        if multiplicity == 0 {
            return Err(corrupt("zero entry multiplicity"));
        }
        subs.push(RawEntry {
            hash,
            pos: DbId::from_index(pos_raw),
            node_count,
            multiplicity,
        });
    }
    let skipped = take_u64(input)?;
    Ok(RawRecord {
        canon,
        root,
        subs,
        skipped,
    })
}

/// Decodes one **v1** insert record (standalone canonical tree per entry)
/// into the shared [`RawRecord`] shape: the per-entry arenas are merged
/// into one node run (no sharing — v1 never had any) with remapped ids.
pub(crate) fn take_record_v1<H: HashWord>(input: &mut &[u8]) -> Result<RawRecord<H>, PersistError> {
    let root_hash = take_hash(input)?;
    let (mut canon, root_pos) = take_canon(input)?;
    let root = RawEntry {
        hash: root_hash,
        pos: root_pos,
        node_count: canon.len() as u64,
        multiplicity: 1,
    };
    let sub_count = take_u32(input)? as usize;
    let mut subs = Vec::with_capacity(sub_count.min(1 << 16));
    for _ in 0..sub_count {
        let hash = take_hash(input)?;
        let (sub_arena, sub_root) = take_canon(input)?;
        let node_count = sub_arena.len() as u64;
        let pos = merge_arena(&mut canon, &sub_arena, sub_root)?;
        subs.push(RawEntry {
            hash,
            pos,
            node_count,
            multiplicity: 1,
        });
    }
    let skipped = take_u64(input)?;
    Ok(RawRecord {
        canon,
        root,
        subs,
        skipped,
    })
}

// ---------------------------------------------------------------------
// Delta records (v3: the WAL payload of `AlphaStore::update`)
// ---------------------------------------------------------------------

/// One decoded rewrite delta: everything recovery needs to repeat an
/// `update` without the full rewritten term. The old root is named by
/// the term id plus its pre-update hash (an integrity cross-check
/// against the store state being replayed into); the rewrite site is
/// the child-index spine path from the class representative's root; the
/// patch travels as its own canonical node run. Replay re-splices the
/// patch canon into the interned old canon along the path, so exactness
/// (merge confirmation by canonical identity) survives restarts just
/// like insert replay.
#[derive(Debug)]
pub(crate) struct RawDelta<H> {
    /// `TermId::to_bits` of the updated term.
    pub term_bits: u64,
    /// Hash of the term's class *before* the update (integrity check).
    pub old_hash: H,
    /// Hash of the rewritten term (what the spine re-hash produced).
    pub new_hash: H,
    /// Tree node count of the rewritten term.
    pub new_node_count: u64,
    /// Child-index path from the canonical root to the rewrite site
    /// (empty replaces the whole term).
    pub path: Vec<u32>,
    /// Canonical form of the replacement subterm.
    pub patch: DbArena,
    /// Root of the patch within its node run.
    pub patch_root: DbId,
}

/// Encodes one v3 delta record.
pub(crate) fn put_delta<H: HashWord>(out: &mut Vec<u8>, delta: &RawDelta<H>) {
    put_u64(out, delta.term_bits);
    put_hash(out, delta.old_hash);
    put_hash(out, delta.new_hash);
    put_u64(out, delta.new_node_count);
    put_u32(out, u32::try_from(delta.path.len()).expect("path fits u32"));
    for &step in &delta.path {
        put_u32(out, step);
    }
    put_dag(out, &delta.patch);
    put_u32(out, delta.patch_root.index() as u32);
}

/// Decodes one v3 delta record.
pub(crate) fn take_delta<H: HashWord>(input: &mut &[u8]) -> Result<RawDelta<H>, PersistError> {
    let term_bits = take_u64(input)?;
    let old_hash = take_hash(input)?;
    let new_hash = take_hash(input)?;
    let new_node_count = take_u64(input)?;
    let path_len = take_u32(input)? as usize;
    let mut path = Vec::with_capacity(path_len.min(1 << 16));
    for _ in 0..path_len {
        path.push(take_u32(input)?);
    }
    let patch = take_dag(input)?;
    let root_raw = take_u32(input)? as usize;
    if root_raw >= patch.len() {
        return Err(corrupt("patch root out of range"));
    }
    Ok(RawDelta {
        term_bits,
        old_hash,
        new_hash,
        new_node_count,
        path,
        patch,
        patch_root: DbId::from_index(root_raw),
    })
}

/// Appends every node of `src` to `dst` (remapping ids and re-interning
/// names) and returns the id `src_root` maps to.
fn merge_arena(dst: &mut DbArena, src: &DbArena, src_root: DbId) -> Result<DbId, PersistError> {
    let syms: Vec<Symbol> = src.names().map(|n| dst.intern(n)).collect();
    let mut map: Vec<DbId> = Vec::with_capacity(src.len());
    for node in src.nodes() {
        let remapped = match node {
            DbNode::BVar(i) => DbNode::BVar(i),
            DbNode::FVar(sym) => DbNode::FVar(syms[sym.index() as usize]),
            DbNode::Lam(b) => DbNode::Lam(map[b.index()]),
            DbNode::App(f, a) => DbNode::App(map[f.index()], map[a.index()]),
            DbNode::Let(r, b) => DbNode::Let(map[r.index()], map[b.index()]),
            DbNode::Lit(l) => DbNode::Lit(l),
        };
        map.push(dst.push(remapped));
    }
    map.get(src_root.index())
        .copied()
        .ok_or_else(|| corrupt("v1 sub-entry root out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::debruijn::{db_eq, db_print, to_debruijn};
    use lambda_lang::parse::parse;
    use lambda_lang::ExprArena;

    #[test]
    fn spec_documents_the_compiled_constants() {
        // docs/PERSISTENCE_FORMAT.md must name exactly the magic numbers
        // and versions this module compiles in — the lockstep check the
        // docs archetype calls for.
        let spec = include_str!("../../../../docs/PERSISTENCE_FORMAT.md");
        let magic = String::from_utf8(SNAPSHOT_MAGIC.to_vec()).unwrap();
        assert!(
            spec.contains(&format!("`{magic}`")),
            "spec must document the snapshot magic {magic:?}"
        );
        let wal_magic = String::from_utf8(WAL_MAGIC.to_vec()).unwrap();
        assert!(
            spec.contains(&format!("`{wal_magic}`")),
            "spec must document the WAL magic {wal_magic:?}"
        );
        assert!(
            spec.contains(&format!("**Format version:** {FORMAT_VERSION}")),
            "spec must document format version {FORMAT_VERSION}"
        );
        assert!(
            spec.contains(&format!(
                "**Compatibility:** versions {COMPAT_VERSION} through {} decode read-only",
                FORMAT_VERSION - 1
            )),
            "spec must document the v{COMPAT_VERSION}..v{} compatibility rule",
            FORMAT_VERSION - 1
        );
        assert!(
            spec.contains("### Delta records"),
            "spec must document the v3 delta-record layout"
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_str(&mut buf, "héllo");
        put_hash(&mut buf, 0x1122_3344_5566_7788_99AA_BBCC_DDEE_FF00u128);
        put_granularity(&mut buf, Granularity::Subexpressions { min_nodes: 7 });

        let mut input = buf.as_slice();
        assert_eq!(take_u8(&mut input).unwrap(), 0xAB);
        assert_eq!(take_u16(&mut input).unwrap(), 0xBEEF);
        assert_eq!(take_u32(&mut input).unwrap(), 0xDEAD_BEEF);
        assert_eq!(take_u64(&mut input).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(take_str(&mut input).unwrap(), "héllo");
        assert_eq!(
            take_hash::<u128>(&mut input).unwrap(),
            0x1122_3344_5566_7788_99AA_BBCC_DDEE_FF00u128
        );
        assert_eq!(
            take_granularity(&mut input).unwrap(),
            Granularity::Subexpressions { min_nodes: 7 }
        );
        assert!(input.is_empty());
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert!(take_u64(&mut input).is_err());
        }
        // A string whose declared length overruns the buffer.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        let mut input = buf.as_slice();
        assert!(take_str(&mut input).is_err());
    }

    #[test]
    fn canon_round_trips_and_preserves_alpha_identity() {
        let sources = [
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*(bar+y)",
            "42",
            "free_variable",
            r"\t. t (1.5 + true)",
        ];
        for src in sources {
            let mut arena = ExprArena::new();
            let parsed = parse(&mut arena, src).unwrap();
            let (canon, root) = to_debruijn(&arena, parsed);
            let mut buf = Vec::new();
            put_canon(&mut buf, &canon, root);
            let mut input = buf.as_slice();
            let (decoded, decoded_root) = take_canon(&mut input).unwrap();
            assert!(input.is_empty(), "trailing bytes for {src}");
            assert!(
                db_eq(&canon, root, &decoded, decoded_root),
                "decode changed the term for {src}"
            );
            assert_eq!(decoded.len(), canon.len());
        }
    }

    #[test]
    fn corrupt_canon_is_rejected() {
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, r"\x. x + 1").unwrap();
        let (canon, root) = to_debruijn(&arena, parsed);
        let mut buf = Vec::new();
        put_canon(&mut buf, &canon, root);
        // Flipping any single byte must yield Corrupt or a *different*
        // term — never a panic. (CRC catches the difference in practice;
        // here we only assert decode robustness.)
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let mut input = bad.as_slice();
            let _ = take_canon(&mut input); // must not panic
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_slice_by_8_matches_the_bytewise_reference() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        // Every length 0..64 (all remainder shapes) over varied bytes.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn record_v2_round_trips_with_sharing_and_multiplicity() {
        // Build a record whose DAG shares a subterm between two entries.
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
        let (dag, root) = to_debruijn(&arena, parsed);
        // A "subterm" entry: reuse the root's left child region by picking
        // an interior node. For the test's purpose any valid position works.
        let sub_pos = DbId::from_index(4.min(dag.len() - 1));
        let mut buf = Vec::new();
        put_record_v2::<u64>(
            &mut buf,
            &dag,
            (0xAAAA, root, dag.len() as u64),
            &[(0xBBBB, sub_pos, 5, 2)],
            3,
        );
        let mut input = buf.as_slice();
        let decoded: RawRecord<u64> = take_record_v2(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(decoded.root.hash, 0xAAAA);
        assert_eq!(decoded.root.pos, root);
        assert_eq!(decoded.skipped, 3);
        assert_eq!(decoded.subs.len(), 1);
        assert_eq!(decoded.subs[0].multiplicity, 2);
        assert_eq!(decoded.subs[0].node_count, 5);
        assert!(db_eq(&decoded.canon, decoded.root.pos, &dag, root));
    }

    #[test]
    fn delta_round_trips() {
        let mut arena = ExprArena::new();
        let patch_named = parse(&mut arena, r"\x. x * (v + 2)").unwrap();
        let (patch, patch_root) = to_debruijn(&arena, patch_named);
        let delta = RawDelta::<u128> {
            term_bits: 0x0007_0000_0000_002A,
            old_hash: 0xAAAA_BBBB,
            new_hash: 0xCCCC_DDDD,
            new_node_count: 41,
            path: vec![0, 1, 1, 0],
            patch,
            patch_root,
        };
        let mut buf = Vec::new();
        put_delta(&mut buf, &delta);
        let mut input = buf.as_slice();
        let decoded: RawDelta<u128> = take_delta(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(decoded.term_bits, delta.term_bits);
        assert_eq!(decoded.old_hash, delta.old_hash);
        assert_eq!(decoded.new_hash, delta.new_hash);
        assert_eq!(decoded.new_node_count, 41);
        assert_eq!(decoded.path, delta.path);
        assert!(db_eq(
            &decoded.patch,
            decoded.patch_root,
            &delta.patch,
            delta.patch_root
        ));
        // Truncations surface as Corrupt, never as panics.
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert!(take_delta::<u128>(&mut input).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn record_v1_decodes_into_the_merged_dag_shape() {
        // Hand-encode a v1 record: root entry + one sub entry, each with
        // its own standalone canon (the old layout).
        let mut arena = ExprArena::new();
        let whole = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
        let subterm = parse(&mut arena, "v * 3").unwrap();
        let (root_canon, root_id) = to_debruijn(&arena, whole);
        let (sub_canon, sub_id) = to_debruijn(&arena, subterm);

        let mut buf = Vec::new();
        put_hash::<u64>(&mut buf, 0x1111);
        put_canon(&mut buf, &root_canon, root_id);
        put_u32(&mut buf, 1); // sub_count
        put_hash::<u64>(&mut buf, 0x2222);
        put_canon(&mut buf, &sub_canon, sub_id);
        put_u64(&mut buf, 9); // skipped

        let mut input = buf.as_slice();
        let decoded: RawRecord<u64> = take_record_v1(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(decoded.root.hash, 0x1111);
        assert_eq!(decoded.subs[0].hash, 0x2222);
        assert_eq!(decoded.subs[0].multiplicity, 1);
        assert_eq!(decoded.skipped, 9);
        assert!(db_eq(
            &decoded.canon,
            decoded.root.pos,
            &root_canon,
            root_id
        ));
        assert!(db_eq(
            &decoded.canon,
            decoded.subs[0].pos,
            &sub_canon,
            sub_id
        ));
        assert_eq!(
            db_print(&decoded.canon, decoded.subs[0].pos),
            db_print(&sub_canon, sub_id)
        );
    }
}
