//! The append-only write-ahead log.
//!
//! Every confirmed insert tees one **record** — the complete
//! [`PreparedTerm`](crate::prepare::PreparedTerm) the ingest path consumed
//! — into the WAL, so a crash loses at most the writes the OS had not yet
//! persisted, and never corrupts what came before. Records are framed as
//! `[len u32][crc32 u32][payload]`; replay walks frames until end-of-file
//! or the first frame whose length or CRC does not check out (a *torn
//! tail*, the expected shape of a crash mid-write), and recovery truncates
//! the file back to the last good frame.
//!
//! **Group commit.** Batch ingest encodes the whole batch's frames into
//! one buffer outside any lock and appends them with a single `write(2)`
//! under the WAL mutex, so the per-insert durability cost is amortised the
//! same way the shard-lock cost is. By default the OS page cache is the
//! durability boundary (data survives a process crash; an OS crash can
//! lose the unsynced tail); [`StoreBuilder::sync_on_commit`]
//! (crate::StoreBuilder::sync_on_commit) upgrades every group commit to an
//! `fsync` for power-loss durability at the throughput cost that implies.
//!
//! The file opens with a header naming the format version, hash width,
//! scheme seed, shard count, granularity and an **epoch**. The epoch ties
//! the WAL to the snapshot that logically precedes it:
//! [`compact`](crate::AlphaStore::compact) bumps it in the snapshot first
//! and resets the WAL second, so a crash between the two steps leaves a
//! stale-epoch WAL that recovery recognises and discards instead of
//! replaying twice. See `docs/PERSISTENCE_FORMAT.md` for the byte layout.

use super::format::{
    self, crc32, put_u16, put_u32, put_u64, take_u16, take_u32, take_u64, FORMAT_VERSION, WAL_MAGIC,
};
use super::PersistError;
use crate::granularity::Granularity;
use crate::prepare::PreparedTerm;
use alpha_hash::combine::HashWord;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Everything a WAL header records about the store it logs for. Must match
/// the snapshot header (and the opening builder's configuration) exactly;
/// recovery refuses to replay records hashed under a different scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct WalHeader {
    pub(crate) hash_bits: u32,
    pub(crate) scheme_seed: u64,
    pub(crate) shard_count: u32,
    pub(crate) granularity: Granularity,
    pub(crate) epoch: u64,
}

pub(crate) const WAL_HEADER_LEN: u64 = 8 + 2 + 4 + 8 + 4 + 1 + 8 + 8;

fn encode_header(h: &WalHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(&WAL_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, h.hash_bits);
    put_u64(&mut out, h.scheme_seed);
    put_u32(&mut out, h.shard_count);
    format::put_granularity(&mut out, h.granularity);
    put_u64(&mut out, h.epoch);
    debug_assert_eq!(out.len() as u64, WAL_HEADER_LEN);
    out
}

fn decode_header(input: &mut &[u8]) -> Result<WalHeader, PersistError> {
    let magic = format::take_bytes(input, 8)?;
    if magic != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            context: "WAL magic mismatch".to_owned(),
        });
    }
    let version = take_u16(input)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Mismatch {
            context: format!("WAL format version {version}, expected {FORMAT_VERSION}"),
        });
    }
    Ok(WalHeader {
        hash_bits: take_u32(input)?,
        scheme_seed: take_u64(input)?,
        shard_count: take_u32(input)?,
        granularity: format::take_granularity(input)?,
        epoch: take_u64(input)?,
    })
}

/// What a replay scan found: the header, the decoded records, and where
/// the good prefix of the file ends (everything past it is a torn tail).
pub(crate) struct WalContents<H> {
    pub(crate) header: WalHeader,
    pub(crate) records: Vec<PreparedTerm<H>>,
    /// Byte offset where the good prefix ends (== file length iff not
    /// `torn`). Recovery's checkpoint rewrites torn files wholesale, so
    /// this is diagnostic (and unit-tested) rather than consumed on the
    /// open path.
    #[allow(dead_code)]
    pub(crate) good_len: u64,
    /// Whether a torn/corrupt tail was found after `good_len`. A torn
    /// WAL disqualifies the clean-reopen fast path.
    pub(crate) torn: bool,
}

/// Reads and decodes a whole WAL file. Frames after the first bad one are
/// dropped; a bad *header* is an error (there is nothing to recover).
pub(crate) fn read_wal<H: HashWord>(path: &Path) -> Result<WalContents<H>, PersistError> {
    let bytes = std::fs::read(path)?;
    let mut input = bytes.as_slice();
    let header = decode_header(&mut input)?;
    let mut records = Vec::new();
    let mut good_len = bytes.len() as u64 - input.len() as u64;
    let torn = loop {
        let frame_start = input.len();
        let Ok(len) = take_u32(&mut input) else {
            // Clean EOF, or trailing garbage shorter than a length field.
            break frame_start != 0;
        };
        let Ok(crc) = take_u32(&mut input) else {
            break true;
        };
        let Ok(payload) = format::take_bytes(&mut input, len as usize) else {
            break true;
        };
        if crc32(payload) != crc {
            break true;
        }
        let mut payload_input = payload;
        let Ok(record) = format::take_record::<H>(&mut payload_input) else {
            break true;
        };
        if !payload_input.is_empty() {
            break true;
        }
        records.push(record);
        good_len += 8 + len as u64;
    };
    Ok(WalContents {
        header,
        records,
        good_len,
        torn,
    })
}

/// The open, appendable log. One lives (behind a mutex) inside every
/// durable [`AlphaStore`](crate::AlphaStore).
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    pub(crate) epoch: u64,
    /// Records currently in the file (good frames only).
    pub(crate) records: u64,
    pub(crate) sync_on_commit: bool,
}

impl Wal {
    /// Creates a fresh WAL (truncating anything at `path`) with the given
    /// header, fsyncing so the header itself is durable.
    pub(crate) fn create(
        path: &Path,
        header: WalHeader,
        sync_on_commit: bool,
    ) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_header(&header))?;
        file.sync_data()?;
        Ok(Wal {
            file,
            epoch: header.epoch,
            records: 0,
            sync_on_commit,
        })
    }

    /// Reopens an intact WAL for appending (the clean-reopen fast path:
    /// nothing to replay, nothing torn, so the existing file continues as
    /// is and no checkpoint is needed). Positions at end-of-file.
    pub(crate) fn open_for_append(
        path: &Path,
        epoch: u64,
        records: u64,
        sync_on_commit: bool,
    ) -> Result<Self, PersistError> {
        use std::io::Seek;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Wal {
            file,
            epoch,
            records,
            sync_on_commit,
        })
    }

    /// Appends one group-committed run of `count` already-framed records
    /// with a single write, flushing (and fsyncing, when configured) once
    /// for the whole group.
    pub(crate) fn append_group(&mut self, frames: &[u8], count: u64) -> Result<(), PersistError> {
        self.file.write_all(frames)?;
        if self.sync_on_commit {
            self.file.sync_data()?;
        }
        self.records += count;
        Ok(())
    }

    /// Truncates the log and starts a new epoch — the second half of
    /// [`compact`](crate::AlphaStore::compact), run only after the
    /// new-epoch snapshot is durably in place.
    pub(crate) fn reset(&mut self, header: WalHeader) -> Result<(), PersistError> {
        use std::io::Seek;
        self.file.set_len(0)?;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        self.file.write_all(&encode_header(&header))?;
        self.file.sync_data()?;
        self.epoch = header.epoch;
        self.records = 0;
        Ok(())
    }
}

/// Frames one record (length + CRC + payload) into `out`, encoding the
/// payload **in place**: eight placeholder bytes are reserved, the record
/// is written directly after them, and length + CRC are patched in once
/// known — no staging buffer, no second copy. This is the durable ingest
/// hot path.
pub(crate) fn frame_record<H: HashWord>(
    out: &mut Vec<u8>,
    root_hash: H,
    root_canon: &lambda_lang::debruijn::DbArena,
    root_canon_root: lambda_lang::debruijn::DbId,
    subs: &[crate::prepare::SubEntry<H>],
    skipped: u64,
) {
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; 8]); // len + crc placeholders
    format::put_record(out, root_hash, root_canon, root_canon_root, subs, skipped);
    let payload = &out[frame_start + 8..];
    let len = u32::try_from(payload.len()).expect("record fits u32");
    let crc = crc32(payload);
    out[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_hash::combine::HashScheme;
    use lambda_lang::parse::parse;
    use lambda_lang::ExprArena;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alpha-store-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn header() -> WalHeader {
        WalHeader {
            hash_bits: 64,
            scheme_seed: 0xABCD,
            shard_count: 4,
            granularity: Granularity::Roots,
            epoch: 3,
        }
    }

    fn sample_frames(sources: &[&str]) -> (Vec<u8>, u64) {
        let mut arena = ExprArena::new();
        let scheme: HashScheme<u64> = HashScheme::new(0xFAB);
        let mut preparer = crate::prepare::Preparer::new(&arena, &scheme);
        let mut frames = Vec::new();
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let (hash, canon, root) = preparer.hash_and_canon(&arena, parsed);
            frame_record(&mut frames, hash, &canon, root, &[], 0);
        }
        (frames, sources.len() as u64)
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[r"\x. x + 1", "v * 3", r"\a. \b. a b"]);
        wal.append_group(&frames, count).unwrap();
        assert_eq!(wal.records, 3);
        drop(wal);

        let contents = read_wal::<u64>(&path).unwrap();
        assert_eq!(contents.header, header());
        assert_eq!(contents.records.len(), 3);
        assert!(!contents.torn);
        assert_eq!(contents.good_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_good_frame() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[r"\x. x + 1", "v * 3"]);
        wal.append_group(&frames, count).unwrap();
        drop(wal);

        let full = std::fs::metadata(&path).unwrap().len();
        // Truncate into the middle of the second record.
        let cut = full - 3;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let contents = read_wal::<u64>(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.records.len(), 1);
        assert!(contents.good_len < cut);

        // A scan of only the good prefix sees a clean single-record log —
        // what recovery's checkpoint effectively preserves.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(contents.good_len).unwrap();
        drop(file);
        let again = read_wal::<u64>(&path).unwrap();
        assert!(!again.torn);
        assert_eq!(again.records.len(), 1);
    }

    #[test]
    fn bitflips_in_a_payload_are_caught_by_the_frame_crc() {
        let path = tmp("bitflip.wal");
        let mut wal = Wal::create(&path, header(), false).unwrap();
        let (frames, count) = sample_frames(&["let w = v+7 in w*w"]);
        wal.append_group(&frames, count).unwrap();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = WAL_HEADER_LEN as usize + 8 + 5; // inside the payload
        bytes[flip_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal::<u64>(&path).unwrap();
        assert!(contents.torn);
        assert!(contents.records.is_empty());
        assert_eq!(contents.good_len, WAL_HEADER_LEN);
    }

    #[test]
    fn reset_starts_a_new_epoch_with_zero_records() {
        let path = tmp("reset.wal");
        let mut wal = Wal::create(&path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[r"\x. x"]);
        wal.append_group(&frames, count).unwrap();
        let mut new_header = header();
        new_header.epoch = 4;
        wal.reset(new_header).unwrap();
        assert_eq!(wal.epoch, 4);
        assert_eq!(wal.records, 0);
        drop(wal);
        let contents = read_wal::<u64>(&path).unwrap();
        assert_eq!(contents.header.epoch, 4);
        assert!(contents.records.is_empty());
        assert!(!contents.torn);
    }

    #[test]
    fn wrong_magic_or_version_is_rejected() {
        let path = tmp("badmagic.wal");
        std::fs::write(&path, b"NOTAWAL!rest").unwrap();
        assert!(matches!(
            read_wal::<u64>(&path),
            Err(PersistError::Corrupt { .. })
        ));

        let mut bytes = encode_header(&header());
        bytes[8] = 0xFF; // version low byte
        let path = tmp("badversion.wal");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal::<u64>(&path),
            Err(PersistError::Mismatch { .. })
        ));
    }
}
