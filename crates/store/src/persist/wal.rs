//! The append-only write-ahead log.
//!
//! Every confirmed insert tees one **record** — the complete prepared
//! term the ingest path consumed, canon encoded as one node-deduplicated
//! DAG — into the WAL, so a crash loses at most the writes the OS had not
//! yet persisted, and never corrupts what came before. Frames are
//! `[len u32][crc32 u32][payload]`, where the payload's first byte is a
//! kind tag: an **insert record**, a **delta record** (v3: one
//! [`crate::AlphaStore::update`], logged as old root + spine path +
//! patch canon instead of the full rewritten term), or a **commit
//! marker** closing one group commit. Replay walks frames until
//! end-of-file or the first frame
//! whose length or CRC does not check out (a *torn tail*, the expected
//! shape of a crash mid-write); recovery truncates back to the last good
//! frame.
//!
//! **Group commit.** Batch ingest encodes the whole chunk's frames — its
//! records, then one commit marker — into one buffer outside any lock and
//! appends them with a single `write(2)` under the WAL mutex, so the
//! per-insert durability cost is amortised the same way the shard-lock
//! cost is. The markers are what lets replay reproduce the *original
//! group boundaries*: each replayed group is applied as one ingest call,
//! so even chunk-boundary-dependent statistics (the root-vs-subterm
//! merge-counter split) come back exactly. By default the OS page cache
//! is the durability boundary (data survives a process crash; an OS crash
//! can lose the unsynced tail);
//! [`StoreBuilder::sync_on_commit`](crate::StoreBuilder::sync_on_commit)
//! upgrades every group commit to an `fsync`.
//!
//! The file opens with a header naming the format version, hash width,
//! scheme seed, shard count, granularity and an **epoch**. The epoch ties
//! the WAL to the snapshot that logically precedes it:
//! [`compact`](crate::AlphaStore::compact) bumps it in the snapshot first
//! and resets the WAL second, so a crash between the two steps leaves a
//! stale-epoch WAL that recovery recognises and discards instead of
//! replaying twice. Version-1 WALs (per-entry tree canon, no commit
//! markers) still decode through [`format::take_record_v1`]; their
//! records replay as one group, re-chunked by the reopening store's
//! `chunk_entries` like the pre-marker code did. See
//! `docs/PERSISTENCE_FORMAT.md` for the byte layout.

use super::format::{
    self, crc32, put_u16, put_u32, put_u64, take_u16, take_u32, take_u64, RawDelta, RawRecord,
    COMPAT_VERSION, FORMAT_VERSION, WAL_MAGIC,
};
use super::vfs::{Vfs, VfsFile};
use super::{PersistError, WalOp};
use crate::dag::{extract_canon, TableView};
use crate::granularity::Granularity;
use crate::obs::WalObs;
use crate::prepare::{PreparedCanon, PreparedTerm};
use alpha_hash::combine::HashWord;
use lambda_lang::canon::CanonRef;
use lambda_lang::debruijn::{DbArena, DbId};
use std::path::Path;

/// Payload kind tag: one insert record.
const FRAME_RECORD: u8 = 1;
/// Payload kind tag: a commit marker closing the group of records framed
/// since the previous marker. Carries the group's record count for
/// validation.
const FRAME_COMMIT: u8 = 2;
/// Payload kind tag (v3): one rewrite delta record.
const FRAME_DELTA: u8 = 3;

/// One replayable WAL entry: a full insert record, or (v3) a rewrite
/// delta. Replay dispatches on this — inserts go through the normal
/// ingest path, deltas re-splice the patch into the interned old canon.
pub(crate) enum WalEntry<H> {
    /// A complete prepared term (one `insert`).
    Insert(RawRecord<H>),
    /// A rewrite delta (one `update`).
    Update(RawDelta<H>),
}

/// Everything a WAL header records about the store it logs for. Must match
/// the snapshot header (and the opening builder's configuration) exactly;
/// recovery refuses to replay records hashed under a different scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct WalHeader {
    pub(crate) hash_bits: u32,
    pub(crate) scheme_seed: u64,
    pub(crate) shard_count: u32,
    pub(crate) granularity: Granularity,
    pub(crate) epoch: u64,
}

pub(crate) const WAL_HEADER_LEN: u64 = 8 + 2 + 4 + 8 + 4 + 1 + 8 + 8;

fn encode_header(h: &WalHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(&WAL_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, h.hash_bits);
    put_u64(&mut out, h.scheme_seed);
    put_u32(&mut out, h.shard_count);
    format::put_granularity(&mut out, h.granularity);
    put_u64(&mut out, h.epoch);
    debug_assert_eq!(out.len() as u64, WAL_HEADER_LEN);
    out
}

fn decode_header(input: &mut &[u8]) -> Result<(WalHeader, u16), PersistError> {
    let magic = format::take_bytes(input, 8)?;
    if magic != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            context: "WAL magic mismatch".to_owned(),
        });
    }
    let version = take_u16(input)?;
    if !format::version_supported(version) {
        return Err(PersistError::Mismatch {
            context: format!(
                "WAL format version {version}, expected {FORMAT_VERSION} (or compat {COMPAT_VERSION}..{})",
                FORMAT_VERSION - 1
            ),
        });
    }
    Ok((
        WalHeader {
            hash_bits: take_u32(input)?,
            scheme_seed: take_u64(input)?,
            shard_count: take_u32(input)?,
            granularity: format::take_granularity(input)?,
            epoch: take_u64(input)?,
        },
        version,
    ))
}

/// What a replay scan found: the header, the decoded records grouped by
/// their original group commits, and where the good prefix of the file
/// ends (everything past it is a torn tail).
pub(crate) struct WalContents<H> {
    pub(crate) header: WalHeader,
    /// The format version the file was written at. An old version
    /// disqualifies the clean-reopen fast path: appending current-version
    /// frames to an old-header WAL would make them undecodable on the
    /// next open, so old files must go through the migrating checkpoint.
    pub(crate) version: u16,
    /// Entries, one inner `Vec` per group commit. A trailing group with no
    /// commit marker (crash mid-group) appears as the final element. For
    /// v1 files (no markers) all records form one group.
    pub(crate) groups: Vec<Vec<WalEntry<H>>>,
    /// Total record count across groups.
    pub(crate) total_records: u64,
    /// Byte offset where the good prefix ends (== file length iff not
    /// `torn`). The clean-reopen fast path hands this to
    /// [`Wal::open_for_append`] as the scan-verified known-good length.
    pub(crate) good_len: u64,
    /// Whether a torn/corrupt tail was found after `good_len`. A torn
    /// WAL disqualifies the clean-reopen fast path.
    pub(crate) torn: bool,
}

/// Whether `path` holds at least an intact, decodable WAL header.
/// `false` means the file was abandoned mid-creation — the header never
/// finished reaching the disk, so no record was ever committed through
/// it and a creating opener may safely start over. An intact header
/// with an *incompatible* version reports `true`: that file is not
/// abandoned, and clobbering it would destroy someone's data, so the
/// normal open path must surface the mismatch instead. Reads at most
/// the fixed-size header region, outside the fault domain (recovery
/// reads never fault — see [`crate::persist::vfs`]).
pub(crate) fn header_intact(path: &Path) -> bool {
    use std::io::Read;
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN as usize);
    let read = std::fs::File::open(path).and_then(|f| f.take(WAL_HEADER_LEN).read_to_end(&mut buf));
    if read.is_err() || (buf.len() as u64) < WAL_HEADER_LEN {
        return false;
    }
    !matches!(
        decode_header(&mut buf.as_slice()),
        Err(PersistError::Corrupt { .. })
    )
}

/// Reads and decodes a whole WAL file. Frames after the first bad one are
/// dropped; a bad *header* is an error (there is nothing to recover).
pub(crate) fn read_wal<H: HashWord>(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<WalContents<H>, PersistError> {
    let bytes = vfs.read(path)?;
    let mut input = bytes.as_slice();
    let (header, version) = decode_header(&mut input)?;
    let mut groups: Vec<Vec<WalEntry<H>>> = Vec::new();
    let mut current: Vec<WalEntry<H>> = Vec::new();
    let mut total_records = 0u64;
    let mut good_len = bytes.len() as u64 - input.len() as u64;
    let torn = loop {
        let frame_start = input.len();
        let Ok(len) = take_u32(&mut input) else {
            // Clean EOF, or trailing garbage shorter than a length field.
            break frame_start != 0;
        };
        let Ok(crc) = take_u32(&mut input) else {
            break true;
        };
        let Ok(payload) = format::take_bytes(&mut input, len as usize) else {
            break true;
        };
        if crc32(payload) != crc {
            break true;
        }
        let mut payload_input = payload;
        if version == COMPAT_VERSION {
            // v1: the payload is a bare record; no kind byte, no markers.
            let Ok(record) = format::take_record_v1::<H>(&mut payload_input) else {
                break true;
            };
            if !payload_input.is_empty() {
                break true;
            }
            current.push(WalEntry::Insert(record));
            total_records += 1;
        } else {
            let Ok(kind) = format::take_u8(&mut payload_input) else {
                break true;
            };
            match kind {
                FRAME_RECORD => {
                    let Ok(record) = format::take_record_v2::<H>(&mut payload_input) else {
                        break true;
                    };
                    if !payload_input.is_empty() {
                        break true;
                    }
                    current.push(WalEntry::Insert(record));
                    total_records += 1;
                }
                FRAME_DELTA if version >= 3 => {
                    let Ok(delta) = format::take_delta::<H>(&mut payload_input) else {
                        break true;
                    };
                    if !payload_input.is_empty() {
                        break true;
                    }
                    current.push(WalEntry::Update(delta));
                    total_records += 1;
                }
                FRAME_COMMIT => {
                    let Ok(count) = take_u64(&mut payload_input) else {
                        break true;
                    };
                    if !payload_input.is_empty() || count != current.len() as u64 {
                        break true;
                    }
                    groups.push(std::mem::take(&mut current));
                }
                _ => break true,
            }
        }
        good_len += 8 + len as u64;
    };
    // v2+ writers always land a group's records and its commit marker in
    // one append, so records with no closing marker — even ending exactly
    // on a frame boundary — can only be a torn write. v1 has no markers;
    // its trailing records are the normal shape.
    let torn = torn || (version >= 2 && !current.is_empty());
    if !current.is_empty() {
        // v1 (no markers) or a group torn before its commit marker.
        groups.push(current);
    }
    Ok(WalContents {
        header,
        version,
        groups,
        total_records,
        good_len,
        torn,
    })
}

/// The open, appendable log. One lives (behind a mutex) inside every
/// durable [`AlphaStore`](crate::AlphaStore).
#[derive(Debug)]
pub(crate) struct Wal {
    file: Box<dyn VfsFile>,
    pub(crate) epoch: u64,
    /// Records currently in the file (good frames only; commit markers do
    /// not count).
    pub(crate) records: u64,
    /// Byte length of the known-good prefix: header plus every group
    /// whose append returned success. A failed append can leave torn
    /// bytes past this point; before the next append (a retry, say) the
    /// file is truncated back here so retried frames never follow
    /// garbage.
    good_len: u64,
    /// Set when an append failed after possibly writing a prefix; the
    /// next append truncates back to `good_len` first.
    dirty: bool,
    /// Set when a [`reset`](Wal::reset) failed partway: the file shape is
    /// unknown (maybe truncated, maybe headerless), so appends are
    /// refused until a reset succeeds and re-establishes a clean header.
    broken: bool,
    pub(crate) sync_on_commit: bool,
    /// The store's WAL-side instruments; detached (`Default`) until
    /// [`attach_durable`](crate::AlphaStore) hands this WAL its handles.
    pub(crate) obs: WalObs,
}

impl Wal {
    /// Creates a fresh WAL (truncating anything at `path`) with the given
    /// header, fsyncing so the header itself is durable.
    pub(crate) fn create(
        vfs: &dyn Vfs,
        path: &Path,
        header: WalHeader,
        sync_on_commit: bool,
    ) -> Result<Self, PersistError> {
        let wal_err = |source| PersistError::Wal {
            op: WalOp::Create,
            source,
        };
        let mut file = vfs.create(path).map_err(wal_err)?;
        file.append(&encode_header(&header))
            .and_then(|()| file.sync())
            .map_err(wal_err)?;
        Ok(Wal {
            file,
            epoch: header.epoch,
            records: 0,
            good_len: WAL_HEADER_LEN,
            dirty: false,
            broken: false,
            sync_on_commit,
            obs: WalObs::default(),
        })
    }

    /// Reopens an intact WAL for appending (the clean-reopen fast path:
    /// nothing to replay, nothing torn, so the existing file continues as
    /// is and no checkpoint is needed). Positions at end-of-file;
    /// `good_len` is the scan-verified file length.
    pub(crate) fn open_for_append(
        vfs: &dyn Vfs,
        path: &Path,
        epoch: u64,
        records: u64,
        good_len: u64,
        sync_on_commit: bool,
    ) -> Result<Self, PersistError> {
        let file = vfs.open_append(path)?;
        Ok(Wal {
            file,
            epoch,
            records,
            good_len,
            dirty: false,
            broken: false,
            sync_on_commit,
            obs: WalObs::default(),
        })
    }

    /// Bytes of record frames appended since the log was last created or
    /// reset — the auto-checkpoint watermark input. Tracked here (not
    /// only in the obs gauge) so the watermark works with the `obs`
    /// feature compiled out.
    pub(crate) fn bytes_since_checkpoint(&self) -> u64 {
        self.good_len.saturating_sub(WAL_HEADER_LEN)
    }

    /// Appends one group-committed run of `count` already-framed records
    /// (the caller framed them and their trailing commit marker) with a
    /// single write, flushing (and fsyncing, when configured) once for the
    /// whole group. If a previous append failed, the torn bytes it may
    /// have left are truncated away first, so a retry of the same group
    /// lands exactly where the failed attempt started.
    pub(crate) fn append_group(&mut self, frames: &[u8], count: u64) -> Result<(), PersistError> {
        if self.broken {
            self.obs.error();
            return Err(PersistError::Wal {
                op: WalOp::Append,
                source: std::io::Error::other(
                    "WAL reset failed earlier; the log is unusable until a checkpoint succeeds",
                ),
            });
        }
        if self.dirty {
            if let Err(source) = self.file.truncate(self.good_len) {
                self.obs.error();
                return Err(PersistError::Wal {
                    op: WalOp::Append,
                    source,
                });
            }
            self.dirty = false;
        }
        let t = self.obs.tick();
        if let Err(source) = self.file.append(frames) {
            self.dirty = true;
            self.obs.error();
            return Err(PersistError::Wal {
                op: WalOp::Append,
                source,
            });
        }
        self.obs.rec_append(t);
        if self.sync_on_commit {
            let t = self.obs.tick();
            if let Err(source) = self.file.sync() {
                // The frames are in the page cache but not durably
                // committed; treat the group as not appended so a retry
                // rewrites it from `good_len`.
                self.dirty = true;
                self.obs.error();
                return Err(PersistError::Wal {
                    op: WalOp::Sync,
                    source,
                });
            }
            self.obs.rec_fsync(t);
        }
        self.obs.add_bytes(frames.len() as u64);
        self.good_len += frames.len() as u64;
        self.records += count;
        Ok(())
    }

    /// Truncates the log and starts a new epoch — the second half of
    /// [`checkpoint`](crate::AlphaStore::checkpoint), run only after the
    /// new-epoch snapshot is durably in place. Also discards any torn
    /// bytes a failed append left behind.
    pub(crate) fn reset(&mut self, header: WalHeader) -> Result<(), PersistError> {
        let io = (|| -> std::io::Result<()> {
            self.file.truncate(0)?;
            self.file.append(&encode_header(&header))?;
            self.file.sync()
        })();
        match io {
            Ok(()) => {
                self.obs.reset_bytes();
                self.epoch = header.epoch;
                self.records = 0;
                self.good_len = WAL_HEADER_LEN;
                self.dirty = false;
                self.broken = false;
                Ok(())
            }
            Err(source) => {
                // The file may now be half-reset (maybe truncated, maybe
                // headerless): refuse appends until a reset succeeds. A
                // half-reset WAL decodes as corrupt and is superseded by
                // the already-renamed new-epoch snapshot on recovery, so
                // no committed record is lost.
                self.broken = true;
                self.obs.error();
                Err(PersistError::Wal {
                    op: WalOp::Reset,
                    source,
                })
            }
        }
    }
}

/// Reserves a frame header, returns the payload start offset.
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; 8]); // len + crc placeholders
    frame_start
}

/// Patches length + CRC over the payload written since [`begin_frame`].
fn end_frame(out: &mut [u8], frame_start: usize) {
    let payload = &out[frame_start + 8..];
    let len = u32::try_from(payload.len()).expect("record fits u32");
    let crc = crc32(payload);
    out[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Frames one root-granularity record from a frontier canonical form,
/// encoding the payload **in place**: placeholder bytes are reserved, the
/// record is written directly after them, and length + CRC are patched in
/// once known — no staging buffer, no second copy. This is the durable
/// root-mode ingest hot path.
pub(crate) fn frame_record_frontier<H: HashWord>(
    out: &mut Vec<u8>,
    hash: H,
    canon: &DbArena,
    canon_root: DbId,
) {
    let frame_start = begin_frame(out);
    format::put_u8(out, FRAME_RECORD);
    // A frontier arena is already a topologically ordered node run; its
    // positions are the record positions.
    format::put_record_v2(out, canon, (hash, canon_root, canon.len() as u64), &[], 0);
    end_frame(out, frame_start);
}

/// Frames one subexpression-granularity record whose entries are interned
/// in the canon DAG: the union of all entry canons is extracted **once**
/// as a node-deduplicated run (shared structure appears one time, however
/// many entries use it), and entries address positions in it.
pub(crate) fn frame_record_interned<H: HashWord>(
    out: &mut Vec<u8>,
    view: &mut TableView<'_>,
    pt: &PreparedTerm<H>,
) {
    let take_ref = |canon: &PreparedCanon| -> CanonRef {
        match canon {
            PreparedCanon::Interned(r) => *r,
            PreparedCanon::Frontier { .. } => {
                unreachable!("subexpression-granularity entries are interned at prepare time")
            }
        }
    };
    let mut refs: Vec<CanonRef> = Vec::with_capacity(1 + pt.subs.len());
    refs.push(take_ref(&pt.root.canon));
    refs.extend(pt.subs.iter().map(|s| take_ref(&s.canon)));
    let mut dag = DbArena::new();
    let ids = extract_canon(view, &refs, &mut dag);

    let frame_start = begin_frame(out);
    format::put_u8(out, FRAME_RECORD);
    let subs: Vec<(H, DbId, u64, u32)> = pt
        .subs
        .iter()
        .zip(&ids[1..])
        .map(|(s, &id)| (s.hash, id, s.node_count, s.multiplicity))
        .collect();
    format::put_record_v2(
        out,
        &dag,
        (pt.root.hash, ids[0], pt.root.node_count),
        &subs,
        pt.skipped,
    );
    end_frame(out, frame_start);
}

/// Frames one rewrite delta record (v3) — the WAL payload of
/// [`crate::AlphaStore::update`]: old root identity, spine path, and
/// the patch's canonical node run. Tiny compared to re-logging the full
/// rewritten term, which is the point of the delta format.
pub(crate) fn frame_delta<H: HashWord>(out: &mut Vec<u8>, delta: &RawDelta<H>) {
    let frame_start = begin_frame(out);
    format::put_u8(out, FRAME_DELTA);
    format::put_delta(out, delta);
    end_frame(out, frame_start);
}

/// Frames the commit marker that closes a group of `count` records.
pub(crate) fn frame_commit(out: &mut Vec<u8>, count: u64) {
    let frame_start = begin_frame(out);
    format::put_u8(out, FRAME_COMMIT);
    put_u64(out, count);
    end_frame(out, frame_start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::vfs::{FaultKind, FaultVfs, OsVfs};
    use alpha_hash::combine::HashScheme;
    use lambda_lang::debruijn::db_eq;
    use lambda_lang::parse::parse;
    use lambda_lang::ExprArena;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alpha-store-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn header() -> WalHeader {
        WalHeader {
            hash_bits: 64,
            scheme_seed: 0xABCD,
            shard_count: 4,
            granularity: Granularity::Roots,
            epoch: 3,
        }
    }

    /// Frames each source as its own record, closing them as `groups`
    /// group commits (one commit marker per inner slice).
    fn sample_frames(groups: &[&[&str]]) -> (Vec<u8>, u64) {
        let mut arena = ExprArena::new();
        let scheme: HashScheme<u64> = HashScheme::new(0xFAB);
        let mut preparer = crate::prepare::Preparer::new(&arena, &scheme);
        let mut frames = Vec::new();
        let mut count = 0u64;
        for group in groups {
            for src in *group {
                let parsed = parse(&mut arena, src).unwrap();
                let (hash, canon, root) = preparer.hash_and_canon(&arena, parsed);
                frame_record_frontier(&mut frames, hash, &canon, root);
                count += 1;
            }
            frame_commit(&mut frames, group.len() as u64);
        }
        (frames, count)
    }

    #[test]
    fn append_and_replay_round_trip_with_group_boundaries() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&[r"\x. x + 1", "v * 3"], &[r"\a. \b. a b"]]);
        wal.append_group(&frames, count).unwrap();
        assert_eq!(wal.records, 3);
        drop(wal);

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert_eq!(contents.header, header());
        assert_eq!(contents.total_records, 3);
        assert!(!contents.torn);
        // Group boundaries survive the round trip exactly.
        let sizes: Vec<usize> = contents.groups.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(contents.good_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn records_round_trip_their_canonical_payload() {
        let path = tmp("payload.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let mut arena = ExprArena::new();
        let scheme: HashScheme<u64> = HashScheme::new(0xFAB);
        let mut preparer = crate::prepare::Preparer::new(&arena, &scheme);
        let parsed = parse(&mut arena, "let w = v+7 in w*w").unwrap();
        let (hash, canon, root) = preparer.hash_and_canon(&arena, parsed);
        let mut frames = Vec::new();
        frame_record_frontier(&mut frames, hash, &canon, root);
        frame_commit(&mut frames, 1);
        wal.append_group(&frames, 1).unwrap();
        drop(wal);

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        let WalEntry::Insert(record) = &contents.groups[0][0] else {
            panic!("expected an insert entry");
        };
        assert_eq!(record.root.hash, hash);
        assert_eq!(record.root.node_count, canon.len() as u64);
        assert!(db_eq(&record.canon, record.root.pos, &canon, root));
    }

    #[test]
    fn delta_frames_round_trip_as_update_entries() {
        let path = tmp("delta.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let mut arena = ExprArena::new();
        let patch_named = parse(&mut arena, r"\x. x + (v * 2)").unwrap();
        let (patch, patch_root) = lambda_lang::debruijn::to_debruijn(&arena, patch_named);
        let delta = RawDelta::<u64> {
            term_bits: 0x0002_0000_0000_0007,
            old_hash: 0x1234,
            new_hash: 0x5678,
            new_node_count: 19,
            path: vec![1, 0],
            patch,
            patch_root,
        };
        let mut frames = Vec::new();
        frame_delta(&mut frames, &delta);
        frame_commit(&mut frames, 1);
        wal.append_group(&frames, 1).unwrap();
        drop(wal);

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.total_records, 1);
        let WalEntry::Update(decoded) = &contents.groups[0][0] else {
            panic!("expected an update entry");
        };
        assert_eq!(decoded.term_bits, delta.term_bits);
        assert_eq!(decoded.old_hash, 0x1234);
        assert_eq!(decoded.new_hash, 0x5678);
        assert_eq!(decoded.path, vec![1, 0]);
        assert!(db_eq(
            &decoded.patch,
            decoded.patch_root,
            &delta.patch,
            delta.patch_root
        ));
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_good_frame() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&[r"\x. x + 1"], &["v * 3"]]);
        wal.append_group(&frames, count).unwrap();
        drop(wal);

        let full = std::fs::metadata(&path).unwrap().len();
        // Truncate into the middle of the second group's record.
        let cut = full - 30;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.total_records, 1);
        assert!(contents.good_len < cut);

        // A scan of only the good prefix sees a clean single-record log —
        // what recovery's checkpoint effectively preserves.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(contents.good_len).unwrap();
        drop(file);
        let again = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(!again.torn);
        assert_eq!(again.total_records, 1);
    }

    #[test]
    fn group_torn_before_its_commit_marker_still_yields_its_records() {
        let path = tmp("torn-group.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&[r"\x. x + 1", "v * 3"]]);
        wal.append_group(&frames, count).unwrap();
        drop(wal);

        // Cut off the commit marker (last frame, 8 + 9 payload bytes).
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 17).unwrap();
        drop(file);

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.total_records, 2);
        assert_eq!(contents.groups.len(), 1, "trailing partial group kept");
    }

    #[test]
    fn bitflips_in_a_payload_are_caught_by_the_frame_crc() {
        let path = tmp("bitflip.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&["let w = v+7 in w*w"]]);
        wal.append_group(&frames, count).unwrap();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = WAL_HEADER_LEN as usize + 8 + 5; // inside the payload
        bytes[flip_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(contents.torn);
        assert!(contents.groups.is_empty());
        assert_eq!(contents.good_len, WAL_HEADER_LEN);
    }

    #[test]
    fn reset_starts_a_new_epoch_with_zero_records() {
        let path = tmp("reset.wal");
        let mut wal = Wal::create(&OsVfs, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&[r"\x. x"]]);
        wal.append_group(&frames, count).unwrap();
        let mut new_header = header();
        new_header.epoch = 4;
        wal.reset(new_header).unwrap();
        assert_eq!(wal.epoch, 4);
        assert_eq!(wal.records, 0);
        drop(wal);
        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert_eq!(contents.header.epoch, 4);
        assert!(contents.groups.is_empty());
        assert!(!contents.torn);
    }

    #[test]
    fn wrong_magic_or_version_is_rejected() {
        let path = tmp("badmagic.wal");
        std::fs::write(&path, b"NOTAWAL!rest").unwrap();
        assert!(matches!(
            read_wal::<u64>(&OsVfs, &path),
            Err(PersistError::Corrupt { .. })
        ));

        let mut bytes = encode_header(&header());
        bytes[8] = 0xFF; // version low byte
        let path = tmp("badversion.wal");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal::<u64>(&OsVfs, &path),
            Err(PersistError::Mismatch { .. })
        ));
    }

    /// An injected `ENOSPC` on append surfaces as the typed
    /// [`PersistError::Wal`] (naming the failed op), leaves the record
    /// count unchanged, and — with the `obs` feature — bumps the
    /// persist-error counter. This used to need `/dev/full` (Linux-only,
    /// kernel-version-dependent op attribution); [`FaultVfs`] makes it
    /// deterministic everywhere.
    #[test]
    fn append_errors_are_typed_and_counted() {
        use super::super::WalOp;
        let path = tmp("enospc.wal");
        let fault = FaultVfs::new();
        let mut wal = Wal::create(&fault, &path, header(), true).unwrap();
        #[cfg(feature = "obs")]
        let store_obs = crate::obs::StoreObs::new();
        #[cfg(feature = "obs")]
        {
            wal.obs = store_obs.wal_obs();
        }
        fault.fail_always(FaultKind::Enospc);
        let (frames, count) = sample_frames(&[&[r"\x. x"]]);
        let err = wal.append_group(&frames, count).unwrap_err();
        match err {
            PersistError::Wal { op, source } => {
                assert_eq!(op, WalOp::Append, "unexpected op {op:?}");
                assert_eq!(source.kind(), std::io::ErrorKind::StorageFull);
            }
            other => panic!("expected PersistError::Wal, got {other:?}"),
        }
        assert_eq!(wal.records, 0, "failed append must not count records");
        #[cfg(feature = "obs")]
        {
            let report = store_obs.report(Vec::new());
            assert_eq!(report.counter("alpha_store_persist_errors"), Some(1));
        }
    }

    /// A short write (partial bytes on disk, then an error) followed by a
    /// retry of the same group must not leave the torn prefix in front of
    /// the retried frames: the dirty-truncate step rewinds to the last
    /// known-good length first, so the file replays clean.
    #[test]
    fn retried_append_truncates_the_torn_prefix_first() {
        let path = tmp("retry.wal");
        let fault = FaultVfs::new();
        let mut wal = Wal::create(&fault, &path, header(), false).unwrap();
        let (frames, count) = sample_frames(&[&[r"\x. x + 1", "v * 3"]]);
        fault.fail_always(FaultKind::ShortWrite);
        assert!(wal.append_group(&frames, count).is_err());
        // Half the group's bytes really landed on disk.
        let len_after_failure = std::fs::metadata(&path).unwrap().len();
        assert!(len_after_failure > WAL_HEADER_LEN);
        fault.clear();
        wal.append_group(&frames, count).unwrap();
        assert_eq!(wal.records, count);
        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(!contents.torn, "retry must not leave torn bytes behind");
        assert_eq!(contents.total_records, count);
    }

    /// A failed fsync with `sync_on_commit` reports `WalOp::Sync`, does
    /// not count the group, and a clean retry lands it exactly once.
    #[test]
    fn failed_fsync_marks_group_uncommitted_and_retry_lands_once() {
        use super::super::WalOp;
        let path = tmp("fsync-fail.wal");
        let fault = FaultVfs::new();
        let mut wal = Wal::create(&fault, &path, header(), true).unwrap();
        let (frames, count) = sample_frames(&[&[r"\a. \b. a b"]]);
        fault.fail_always(FaultKind::FsyncFail);
        let err = wal.append_group(&frames, count).unwrap_err();
        assert!(matches!(
            err,
            PersistError::Wal {
                op: WalOp::Sync,
                ..
            }
        ));
        assert_eq!(wal.records, 0);
        fault.clear();
        wal.append_group(&frames, count).unwrap();
        let contents = read_wal::<u64>(&OsVfs, &path).unwrap();
        assert!(!contents.torn);
        assert_eq!(
            contents.total_records, count,
            "group must land exactly once"
        );
    }
}
