//! Durability: write-ahead logging, snapshots and crash recovery.
//!
//! An [`AlphaStore`] is in-memory by default; this
//! module makes one **durable**. A durable store lives in a directory with
//! two files:
//!
//! * `snapshot.bin` — a complete serialization of the store, written
//!   atomically (temp file → `fsync` → rename). The canonical de Bruijn
//!   form per class *is* the class identity (the paper's key property), so
//!   the snapshot is a full, rebuildable description: one shared canon
//!   node table + per-class refs + scheme seed + granularity, nothing
//!   more.
//! * `wal.bin` — an append-only log of every insert and rewrite-update
//!   since that snapshot: one CRC-framed record per ingested term, one
//!   **delta record** per [`update`](crate::AlphaStore::update) (old
//!   root + spine path + patch canon, not the full rewritten term), plus
//!   a **commit marker** per group commit, so replay can reproduce the
//!   original batch grouping exactly.
//!
//! Recovery ([`AlphaStore::open`](crate::AlphaStore::open) or
//! [`StoreBuilder::open_durable`](crate::StoreBuilder::open_durable)) loads
//! the snapshot, replays the WAL tail **through the normal ingest path** —
//! every replayed merge is re-confirmed by canonical-form identity, so the
//! store's exactness invariant (`unconfirmed_merges == 0`) survives
//! restarts by construction, not by trust in the disk — and then
//! checkpoints: it writes a fresh snapshot and resets the WAL under a new
//! epoch, so every successfully opened store starts from the clean
//! `(full snapshot, empty WAL)` state whatever crash weirdness it
//! recovered from. [`verify_on_replay`](crate::StoreBuilder::verify_on_replay) upgrades replay to
//! paranoid mode: every record is re-hashed from its canonical payload
//! before being trusted, catching consistent corruption that CRC framing
//! and merge confirmation cannot see.
//!
//! What each crash window leaves behind:
//!
//! | crash during … | on disk | recovery |
//! |---|---|---|
//! | normal ingest | snapshot + WAL with a possibly-torn tail | replay good frames, drop the torn tail |
//! | snapshot write | old snapshot + complete WAL (temp file ignored) | replay from the old snapshot |
//! | compaction, between snapshot rename and WAL reset | new snapshot + **stale-epoch** WAL | epoch mismatch detected, stale WAL discarded (its records are in the snapshot) |
//!
//! The byte-level layout lives in [`mod@format`] and is specified in
//! `docs/PERSISTENCE_FORMAT.md`; a test asserts the two agree on magic
//! numbers and versions. Format-v1 files (pre canon-DAG) and v2 files
//! (pre delta-records) open read-only through decode shims and are
//! migrated to the current version by the checkpoint.

pub mod format;
pub(crate) mod snapshot;
pub mod vfs;
pub(crate) mod wal;

use crate::canon::rebuild_named;
use crate::dag::CanonTable;
use crate::granularity::Granularity;
use crate::store::{AlphaStore, AutoCheckpoint, RetryPolicy};
use alpha_hash::combine::{HashScheme, HashWord};
use format::RawRecord;
use lambda_lang::debruijn::DbNode;
use lambda_lang::ExprArena;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use vfs::Vfs;

/// File name of the snapshot inside a durable store's directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// File name of the write-ahead log inside a durable store's directory.
pub const WAL_FILE: &str = "wal.bin";

/// File name of the advisory lock taken (for the store's whole lifetime)
/// by every process that opens a durable store directory. A second
/// opener fails fast with [`PersistError::Locked`] instead of silently
/// truncating a WAL the first process is still appending to. The OS
/// releases the lock automatically when the holding process exits, so a
/// crash never leaves a stale lock.
pub const LOCK_FILE: &str = "store.lock";

/// What can go wrong persisting or recovering a store.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes that cannot be what this format writes: bad magic,
    /// failed CRC, impossible tags or out-of-range references — or, in
    /// [`verify_on_replay`](crate::StoreBuilder::verify_on_replay) mode, a
    /// record whose canonical payload re-hashes to a different address
    /// than the one it claims. (A torn WAL *tail* is not corruption —
    /// recovery truncates it silently; this is for damage in data that
    /// claimed to be intact.)
    Corrupt {
        /// Human-readable description of what failed to parse.
        context: String,
    },
    /// Intact data that belongs to a different configuration: wrong format
    /// version, wrong hash width, or a store opened with a builder whose
    /// scheme/shards/granularity disagree with what is on disk.
    Mismatch {
        /// Human-readable description of the disagreement.
        context: String,
    },
    /// Another live store (this process or another) holds the directory's
    /// advisory lock. Durable stores are strictly single-writer: a second
    /// opener would checkpoint over — and truncate — the WAL the first is
    /// appending to.
    Locked {
        /// The contended store directory.
        dir: PathBuf,
    },
    /// An I/O failure on the live write-ahead log itself. Split from
    /// [`PersistError::Io`] because a WAL failure on a live durable
    /// store is fatal to durability — the in-memory state can no longer
    /// be rebuilt from disk — where other I/O errors (a failed snapshot
    /// write, say) leave the store fully recoverable. The `op` says
    /// which log operation failed; every occurrence also increments the
    /// `alpha_store_persist_errors` counter when the `obs` feature is
    /// on.
    Wal {
        /// The WAL operation that failed.
        op: WalOp,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// An I/O failure inside the atomic snapshot-write protocol. The `op`
    /// says which step failed — **including the trailing directory sync**,
    /// without which the rename itself is not durable (this used to be
    /// silently swallowed). A failed snapshot leaves the previous snapshot
    /// and the WAL untouched: the store remains fully recoverable, which
    /// is why this is distinct from [`PersistError::Wal`]. Every
    /// occurrence also increments `alpha_store_persist_errors` when the
    /// `obs` feature is on.
    Snapshot {
        /// The snapshot-protocol step that failed.
        op: SnapshotOp,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
}

/// The write-ahead-log operation behind a [`PersistError::Wal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Creating or re-initialising the log file (header write + fsync).
    Create,
    /// Appending a group-committed run of record frames.
    Append,
    /// The `fsync` closing a group commit (with
    /// [`sync_on_commit`](crate::StoreBuilder::sync_on_commit)).
    Sync,
    /// Truncating and restarting the log after a checkpoint.
    Reset,
}

impl fmt::Display for WalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WalOp::Create => "create",
            WalOp::Append => "append",
            WalOp::Sync => "sync",
            WalOp::Reset => "reset",
        })
    }
}

/// The atomic-snapshot-protocol step behind a [`PersistError::Snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotOp {
    /// Creating the temp file next to the destination.
    Create,
    /// Writing the serialized store into the temp file.
    Write,
    /// The `fsync` that makes the temp file's content durable before the
    /// rename can commit it.
    Sync,
    /// Renaming the temp file over the destination (the commit point).
    Rename,
    /// The directory `fsync` that makes the **rename itself** durable.
    /// A failure here fails the protocol: the new snapshot may not
    /// survive power loss even though the rename returned success.
    DirSync,
}

impl fmt::Display for SnapshotOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotOp::Create => "temp-file create",
            SnapshotOp::Write => "temp-file write",
            SnapshotOp::Sync => "temp-file sync",
            SnapshotOp::Rename => "rename",
            SnapshotOp::DirSync => "directory sync",
        })
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { context } => write!(f, "corrupt store data: {context}"),
            PersistError::Mismatch { context } => {
                write!(f, "store configuration mismatch: {context}")
            }
            PersistError::Locked { dir } => {
                write!(
                    f,
                    "store directory {} is locked by another live store (durable \
                     stores are single-writer)",
                    dir.display()
                )
            }
            PersistError::Wal { op, source } => {
                write!(f, "write-ahead log {op} failed: {source}")
            }
            PersistError::Snapshot { op, source } => {
                write!(f, "snapshot {op} failed: {source}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Wal { source, .. } => Some(source),
            PersistError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The durable half of a store: the open WAL, its directory, the storage
/// backend every snapshot write goes through, and the held single-writer
/// lock (released by the OS when this is dropped or the process dies).
#[derive(Debug)]
pub(crate) struct Durable {
    pub(crate) wal: Mutex<wal::Wal>,
    pub(crate) dir: PathBuf,
    pub(crate) vfs: Arc<dyn Vfs>,
    _lock: std::fs::File,
}

/// Open-time knobs shared by every durable-open entry point.
#[derive(Clone, Debug)]
pub(crate) struct OpenConfig {
    pub(crate) sync_on_commit: bool,
    pub(crate) chunk_entries: usize,
    /// Paranoid replay: re-hash every record's canonical payload before
    /// trusting it (see
    /// [`StoreBuilder::verify_on_replay`](crate::StoreBuilder::verify_on_replay)).
    pub(crate) verify_on_replay: bool,
    /// The storage backend every persisted byte flows through
    /// ([`vfs::OsVfs`] in production, [`vfs::FaultVfs`] under test).
    pub(crate) vfs: Arc<dyn Vfs>,
    /// WAL append/sync retry policy for the health state machine.
    pub(crate) retry: RetryPolicy,
    /// Auto-checkpoint watermarks (off by default).
    pub(crate) auto_ckpt: AutoCheckpoint,
    /// Canon-table stripe count for the rebuilt store. A per-process
    /// concurrency knob: refs pack the stripe but nothing on disk does
    /// (serialization uses flat topological positions), so the same
    /// directory can be reopened under any stripe count.
    pub(crate) table_shards: usize,
}

/// Paranoid-mode record validation: recompute what the record *claims*
/// from its canonical payload alone. The tree sizes are re-derived by a
/// sharing-aware DP over the record's node run, then each entry's canon
/// is rebuilt to a named term and pushed through the full hashing
/// pipeline; any disagreement with the recorded `node_count`/`hash` is
/// corruption that frame CRCs (computed over already-corrupt bytes) and
/// merge confirmation (which only compares canon against canon) cannot
/// catch.
pub(crate) fn verify_record<H: HashWord>(
    scheme: &HashScheme<H>,
    raw: &RawRecord<H>,
) -> Result<(), PersistError> {
    // Tree size per node-run position (children precede parents, so one
    // forward sweep suffices; saturating keeps adversarial DAGs finite).
    let mut sizes: Vec<u64> = Vec::with_capacity(raw.canon.len());
    for node in raw.canon.nodes() {
        let size = match node {
            DbNode::BVar(_) | DbNode::FVar(_) | DbNode::Lit(_) => 1,
            DbNode::Lam(b) => 1u64.saturating_add(sizes[b.index()]),
            DbNode::App(f, a) => 1u64
                .saturating_add(sizes[f.index()])
                .saturating_add(sizes[a.index()]),
            DbNode::Let(r, b) => 1u64
                .saturating_add(sizes[r.index()])
                .saturating_add(sizes[b.index()]),
        };
        sizes.push(size);
    }
    let check = |entry: &format::RawEntry<H>| -> Result<(), PersistError> {
        if sizes[entry.pos.index()] != entry.node_count {
            return Err(PersistError::Corrupt {
                context: format!(
                    "verify_on_replay: recorded node count {} but canonical payload has {}",
                    entry.node_count,
                    sizes[entry.pos.index()]
                ),
            });
        }
        let mut scratch = ExprArena::new();
        let named = rebuild_named(&raw.canon, entry.pos, &mut scratch);
        let rehashed = alpha_hash::hashed::hash_expr(&scratch, named, scheme);
        if rehashed != entry.hash {
            return Err(PersistError::Corrupt {
                context: "verify_on_replay: canonical payload re-hashes to a different \
                          content address than the record claims"
                    .to_owned(),
            });
        }
        Ok(())
    };
    check(&raw.root)?;
    for sub in &raw.subs {
        check(sub)?;
    }
    Ok(())
}

/// Takes the directory's advisory single-writer lock, failing fast with
/// [`PersistError::Locked`] if any other live store holds it. Taken
/// before any file is read, so even recovery is mutually exclusive.
fn acquire_dir_lock(dir: &Path) -> Result<std::fs::File, PersistError> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(dir.join(LOCK_FILE))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(PersistError::Locked {
            dir: dir.to_owned(),
        }),
        Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
    }
}

/// The builder-side configuration a reopened store must match.
pub(crate) struct ExpectedConfig<H: HashWord> {
    pub(crate) scheme: HashScheme<H>,
    /// Already clamped/rounded the way the store constructor does it.
    pub(crate) shard_count: u32,
    pub(crate) granularity: Granularity,
}

fn check_config<H: HashWord>(
    expect: &ExpectedConfig<H>,
    seed: u64,
    shard_count: u32,
    granularity: Granularity,
) -> Result<(), PersistError> {
    let mismatch = |context: String| Err(PersistError::Mismatch { context });
    if expect.scheme.seed() != seed {
        return mismatch(format!(
            "on-disk scheme seed {seed:#x} != builder scheme seed {:#x}",
            expect.scheme.seed()
        ));
    }
    if expect.shard_count != shard_count {
        return mismatch(format!(
            "on-disk shard count {shard_count} != builder shard count {}",
            expect.shard_count
        ));
    }
    if expect.granularity != granularity {
        return mismatch(format!(
            "on-disk granularity {granularity:?} != builder granularity {:?}",
            expect.granularity
        ));
    }
    Ok(())
}

/// The recover-or-create path behind
/// [`StoreBuilder::open_durable`](crate::StoreBuilder::open_durable): the
/// directory lock is taken **before** deciding between recovery and
/// creation, so a racing second opener can never observe "empty" and
/// truncate files a first opener is writing.
pub(crate) fn open_or_create_store<H: HashWord>(
    dir: &Path,
    expect: &ExpectedConfig<H>,
    config: OpenConfig,
) -> Result<AlphaStore<H>, PersistError> {
    std::fs::create_dir_all(dir)?;
    let lock = acquire_dir_lock(dir)?;
    // A WAL alone whose fixed header never finished reaching the disk is
    // a creation that crashed mid-flight: nothing was ever committed
    // through it, so it does not count as an existing store and the
    // create path below (which truncates it) starts over.
    let exists = dir.join(SNAPSHOT_FILE).is_file()
        || (dir.join(WAL_FILE).is_file() && wal::header_intact(&dir.join(WAL_FILE)));
    if exists {
        open_store_locked(dir, Some(expect), config, lock)
    } else {
        create_store_locked(dir, expect, config, lock)
    }
}

/// The shared open/recovery path behind [`AlphaStore::open`] and
/// [`StoreBuilder::open_durable`](crate::StoreBuilder::open_durable).
///
/// `expect` is `Some` when a builder supplies a configuration the on-disk
/// store must match, `None` when the configuration is read entirely from
/// disk. Ends with a checkpoint — fresh snapshot, reset WAL, next epoch —
/// unless the reopen was *clean* (intact current-version snapshot,
/// same-epoch WAL fully absorbed, nothing torn), in which case the
/// existing files simply continue: no O(store) snapshot rewrite for a
/// no-op reopen.
pub(crate) fn open_store<H: HashWord>(
    dir: &Path,
    expect: Option<&ExpectedConfig<H>>,
    config: OpenConfig,
) -> Result<AlphaStore<H>, PersistError> {
    let lock = acquire_dir_lock(dir)?;
    open_store_locked(dir, expect, config, lock)
}

fn open_store_locked<H: HashWord>(
    dir: &Path,
    expect: Option<&ExpectedConfig<H>>,
    config: OpenConfig,
    lock: std::fs::File,
) -> Result<AlphaStore<H>, PersistError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);
    let have_snapshot = snap_path.is_file();
    let have_wal = wal_path.is_file();
    if !have_snapshot && !have_wal {
        return Err(PersistError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no {SNAPSHOT_FILE} or {WAL_FILE} in {}", dir.display()),
        )));
    }

    // 0. Read the WAL once up front; both the config-derivation step and
    // the replay step below consume this same scan.
    let wal_scan: Option<Result<wal::WalContents<H>, PersistError>> =
        have_wal.then(|| wal::read_wal::<H>(&*config.vfs, &wal_path));

    // 1. The snapshot (or an empty store described by the WAL header).
    // Every canonical form decoded anywhere below interns into this one
    // table, which the rebuilt store then owns.
    let table = CanonTable::with_shards(config.table_shards);
    // Recovery-phase timings, folded into the store's obs registry once
    // the store exists (it does not yet, while the phases run).
    let mut snap_load_ns = 0u64;
    let mut replay_ns = 0u64;
    let (mut store, snap_epoch, snap_version, records_applied, wal_contents) = if have_snapshot {
        let t = std::time::Instant::now();
        let (header, shards, version) =
            snapshot::read_snapshot::<H>(&*config.vfs, &snap_path, &table)?;
        snap_load_ns = t.elapsed().as_nanos() as u64;
        if let Some(expect) = expect {
            check_config(
                expect,
                header.scheme_seed,
                header.shard_count,
                header.granularity,
            )?;
        }
        let store = AlphaStore::from_loaded(
            HashScheme::from_raw_seed(header.scheme_seed),
            shards,
            header.granularity,
            &header.stats,
            config.chunk_entries,
            table,
        )?;
        // With an intact snapshot, a WAL whose *header* cannot even be
        // decoded (truncated by a disk-full crash during reset, zeroed,
        // overwritten) is treated like a stale WAL: the snapshot is the
        // authoritative committed state, and the checkpoint below lays
        // down a fresh log. Intact-but-mismatched WALs still error.
        let wal_contents = match wal_scan {
            None => None,
            Some(Ok(contents)) => Some(contents),
            Some(Err(PersistError::Corrupt { .. })) => None,
            Some(Err(e)) => return Err(e),
        };
        (
            store,
            Some(header.wal_epoch),
            version,
            header.wal_records_applied,
            wal_contents,
        )
    } else {
        let contents = wal_scan.expect("have_wal when no snapshot exists")?;
        let h = contents.header;
        if h.hash_bits != H::BITS {
            return Err(PersistError::Mismatch {
                context: format!(
                    "WAL hashes are {}-bit, store type is {}-bit",
                    h.hash_bits,
                    H::BITS
                ),
            });
        }
        if let Some(expect) = expect {
            check_config(expect, h.scheme_seed, h.shard_count, h.granularity)?;
        }
        let store = AlphaStore::from_loaded(
            HashScheme::from_raw_seed(h.scheme_seed),
            (0..h.shard_count)
                .map(|_| crate::store::Shard::empty())
                .collect(),
            h.granularity,
            &crate::stats::StoreStats::default(),
            config.chunk_entries,
            table,
        )?;
        (store, None, contents.version, 0, Some(contents))
    };

    // 2. The WAL tail.
    let mut last_epoch = snap_epoch.unwrap_or(0);
    // `Some((records, good_len))` when the reopen is *clean*: intact
    // snapshot, intact same-epoch WAL whose every record the snapshot
    // already absorbed.
    let mut clean_wal: Option<(u64, u64)> = None;
    // WAL records fed back through the ingest path, for
    // [`AlphaStore::recovery_info`].
    let mut replayed_records: u64 = 0;
    if let Some(contents) = wal_contents {
        let h = contents.header;
        if h.hash_bits != H::BITS
            || h.scheme_seed != store.scheme().seed()
            || h.granularity != store.granularity()
            || usize::try_from(h.shard_count) != Ok(store.shard_count())
        {
            return Err(PersistError::Mismatch {
                context: "WAL header disagrees with the snapshot it extends".to_owned(),
            });
        }
        match snap_epoch {
            Some(es) if h.epoch > es => {
                return Err(PersistError::Corrupt {
                    context: format!(
                        "WAL epoch {} is ahead of snapshot epoch {es} — the snapshot \
                         this WAL extends is missing",
                        h.epoch
                    ),
                });
            }
            Some(es) if h.epoch < es => {
                // Crash between compaction's snapshot rename and WAL
                // reset: every record in this WAL is already folded into
                // the snapshot. Discard.
                last_epoch = es;
            }
            _ => {
                // Same epoch (or no snapshot at all): replay the records
                // the snapshot has not absorbed. A tail torn inside the
                // already-applied region means those lost records are in
                // the snapshot anyway.
                last_epoch = h.epoch.max(last_epoch);
                let count = contents.total_records;
                // Clean-reopen also requires both files to be at the
                // CURRENT format version: appending current-version
                // frames to an old-version WAL (or leaving an old
                // snapshot in place) would produce a file no future open
                // can decode. Old versions always go through the
                // migrating checkpoint.
                let current_version = snap_version == format::FORMAT_VERSION
                    && contents.version == format::FORMAT_VERSION;
                if have_snapshot && current_version && !contents.torn && count == records_applied {
                    // Clean reopen: the snapshot already holds every WAL
                    // record and the file is intact — it can simply
                    // continue being appended to.
                    clean_wal = Some((records_applied, contents.good_len));
                } else {
                    let tail = drop_applied_records(contents.groups, records_applied);
                    replayed_records = tail.iter().map(|g| g.len() as u64).sum();
                    let t = std::time::Instant::now();
                    store.replay(tail, config.verify_on_replay)?;
                    replay_ns = t.elapsed().as_nanos() as u64;
                }
            }
        }
    }

    store.record_recovery(snap_load_ns, replay_ns);
    store.recovery = Some(crate::store::RecoveryInfo {
        replayed_records,
        clean: clean_wal.is_some(),
    });

    // 3a. Clean reopen: nothing was replayed and nothing was torn, so the
    // on-disk pair is already in a consistent state — skip the O(store)
    // checkpoint and keep appending to the existing WAL.
    if let Some((records, good_len)) = clean_wal {
        let wal = wal::Wal::open_for_append(
            &*config.vfs,
            &wal_path,
            last_epoch,
            records,
            good_len,
            config.sync_on_commit,
        )?;
        store.set_reliability(config.retry, config.auto_ckpt);
        store.attach_durable(Durable {
            wal: Mutex::new(wal),
            dir: dir.to_owned(),
            vfs: config.vfs,
            _lock: lock,
        });
        return Ok(store);
    }

    // 3b. Checkpoint: the recovered state becomes the new snapshot and the
    // WAL restarts empty under the next epoch, so the on-disk pair is in
    // the clean post-compaction state no matter what was recovered (this
    // is also what migrates a v1 store to the current format).
    let new_epoch = last_epoch + 1;
    let header = wal::WalHeader {
        hash_bits: H::BITS,
        scheme_seed: store.scheme().seed(),
        shard_count: u32::try_from(store.shard_count()).expect("shard count fits u32"),
        granularity: store.granularity(),
        epoch: new_epoch,
    };
    store.write_snapshot_file(&*config.vfs, &snap_path, new_epoch, 0)?;
    let wal = wal::Wal::create(&*config.vfs, &wal_path, header, config.sync_on_commit)?;
    store.set_reliability(config.retry, config.auto_ckpt);
    store.attach_durable(Durable {
        wal: Mutex::new(wal),
        dir: dir.to_owned(),
        vfs: config.vfs,
        _lock: lock,
    });
    Ok(store)
}

/// Drops the first `applied` entries (the ones the snapshot already
/// absorbed) from a group list, preserving the grouping of everything
/// after them. Snapshot cuts always land on group boundaries (the
/// maintenance lock excludes mid-group cuts), so the split-a-group branch
/// only triggers on hand-damaged files — where splitting is still the
/// right conservative answer.
fn drop_applied_records<T>(groups: Vec<Vec<T>>, applied: u64) -> Vec<Vec<T>> {
    let mut to_skip = usize::try_from(applied).unwrap_or(usize::MAX);
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        if to_skip == 0 {
            out.push(group);
        } else if group.len() <= to_skip {
            to_skip -= group.len();
        } else {
            out.push(group.into_iter().skip(to_skip).collect());
            to_skip = 0;
        }
    }
    out
}

/// Creates a brand-new durable store directory (no snapshot yet, empty
/// WAL) for a builder's configuration. The caller already holds the
/// directory lock and has confirmed, under that lock, that no store
/// files exist.
fn create_store_locked<H: HashWord>(
    dir: &Path,
    expect: &ExpectedConfig<H>,
    config: OpenConfig,
    lock: std::fs::File,
) -> Result<AlphaStore<H>, PersistError> {
    let header = wal::WalHeader {
        hash_bits: H::BITS,
        scheme_seed: expect.scheme.seed(),
        shard_count: expect.shard_count,
        granularity: expect.granularity,
        epoch: 1,
    };
    let wal = wal::Wal::create(
        &*config.vfs,
        &dir.join(WAL_FILE),
        header,
        config.sync_on_commit,
    )?;
    let mut store = AlphaStore::from_loaded(
        expect.scheme,
        (0..expect.shard_count)
            .map(|_| crate::store::Shard::empty())
            .collect(),
        expect.granularity,
        &crate::stats::StoreStats::default(),
        config.chunk_entries,
        CanonTable::with_shards(config.table_shards),
    )?;
    store.set_reliability(config.retry, config.auto_ckpt);
    store.attach_durable(Durable {
        wal: Mutex::new(wal),
        dir: dir.to_owned(),
        vfs: config.vfs,
        _lock: lock,
    });
    Ok(store)
}
