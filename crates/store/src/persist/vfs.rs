//! The storage backend seam: every byte the store persists flows
//! through a [`Vfs`].
//!
//! The durable layer (`wal.rs`, `snapshot.rs`, `mod.rs`) never touches
//! `std::fs` for data it persists; it goes through this trait pair
//! instead. Two implementations exist:
//!
//! * [`OsVfs`] — the real filesystem. The default; a store built without
//!   an explicit [`StoreBuilder::vfs`](crate::StoreBuilder::vfs) uses it.
//! * [`FaultVfs`] — the same real files, but with **deterministic fault
//!   injection**: every *write-side* operation (create, append, sync,
//!   truncate, rename, directory sync, remove) draws a monotonically
//!   increasing op index, and a configured plan decides whether that op
//!   fails and how ([`FaultKind`]). This is what the crash-point sweep
//!   harness (`tests/fault_injection.rs`) drives: enumerate every op
//!   index, kill the store there, reopen, compare against an oracle.
//!
//! ## The fault domain
//!
//! Only write-side operations are faultable. Reads
//! ([`Vfs::read`]) never fail through the injection plan: recovery-time
//! read corruption is modelled separately (and more precisely) by the
//! torn-write and bitflip tests, which damage real bytes and let the
//! CRC framing find them. The directory lock file and `create_dir_all`
//! also stay outside the fault domain — they model process identity,
//! not storage.
//!
//! ## Op counting and determinism
//!
//! [`FaultVfs`] counts ops process-wide per handle (clones share the
//! counter). A scripted single-threaded workload therefore performs the
//! *same* op sequence every run, so "fail op #17" names one specific
//! write in that script, deterministically — no OS special files
//! (`/dev/full`), no timing.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open, writable file handle obtained from a [`Vfs`].
///
/// Semantics the durable layer relies on:
/// * [`append`](VfsFile::append) has `write_all` semantics at the
///   current end of the written region — it either writes the whole
///   buffer or returns an error (a faulting implementation may leave a
///   *prefix* behind, which is exactly the torn-write shape recovery
///   must survive).
/// * [`truncate`](VfsFile::truncate) cuts the file to `len` bytes and
///   repositions so the next `append` continues at `len` — the WAL uses
///   it both to reset after a checkpoint and to cut torn bytes left by
///   a failed append before retrying.
pub trait VfsFile: Send + fmt::Debug {
    /// Appends the whole buffer (or errors, possibly leaving a prefix).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data (and metadata needed to read it back) to
    /// stable storage — `fdatasync` semantics.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates to `len` bytes; subsequent appends continue at `len`.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A pluggable storage backend: the six operations the durable layer
/// needs. See the [module docs](self) for the contract and the two
/// implementations.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates (truncating any existing file) a writable file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for appending at its current end.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file. Never faultable (see the module docs).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` over `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Syncs a directory so a completed rename itself is durable.
    /// Implementations may treat genuinely unsupported platforms as
    /// success, but a real failure must surface.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file (used to clean up snapshot temp files).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem: thin wrappers over `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsVfs;

#[derive(Debug)]
struct OsFile(File);

impl VfsFile for OsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        self.0.seek(io::SeekFrom::Start(len))?;
        Ok(())
    }
}

impl Vfs for OsVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(OsFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // POSIX-specific; platforms that cannot open or sync a directory
        // report Unsupported, which degrades to success. Any *real*
        // failure (the fsync was attempted and the kernel said no)
        // surfaces — see `snapshot::write_atomically`.
        match File::open(dir) {
            Ok(f) => match f.sync_all() {
                Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
                other => other,
            },
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// How an injected fault manifests at the faulted operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the op fails with [`io::ErrorKind::StorageFull`],
    /// nothing written.
    Enospc,
    /// A generic I/O error, nothing written.
    Eio,
    /// An append writes only a **prefix** of the buffer, then errors —
    /// the caller *knows* it failed, but torn bytes are on disk.
    /// Non-append ops just error.
    ShortWrite,
    /// An append writes only a prefix of the buffer but **reports
    /// success** — the silent torn write a power cut leaves behind when
    /// only part of a page run reached the platter. Non-append ops
    /// error.
    TornWrite,
    /// A failed `fsync`: sync ops error, appends succeed untouched.
    FsyncFail,
    /// Crash-stop: the op (and, under
    /// [`FaultVfs::crash_at`], every later op) fails immediately with
    /// nothing written — the moment the simulated machine died.
    CrashStop,
}

impl FaultKind {
    fn error(self) -> io::Error {
        match self {
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            ),
            FaultKind::Eio => io::Error::other("injected fault: I/O error"),
            FaultKind::ShortWrite => io::Error::new(
                io::ErrorKind::WriteZero,
                "injected fault: short write (prefix persisted)",
            ),
            FaultKind::TornWrite => io::Error::other("injected fault: torn write"),
            FaultKind::FsyncFail => io::Error::other("injected fault: fsync failed"),
            FaultKind::CrashStop => io::Error::other("injected fault: crash-stop"),
        }
    }
}

/// The active injection plan. `FailAt` is one-shot; `CrashAt` latches.
#[derive(Clone, Copy, Debug)]
enum Plan {
    None,
    FailAt { op: u64, kind: FaultKind },
    CrashAt { op: u64, kind: FaultKind },
    FailAlways { kind: FaultKind },
    FailEvery { period: u64, kind: FaultKind },
}

#[derive(Debug)]
struct FaultState {
    ops: AtomicU64,
    plan: Mutex<Plan>,
    /// Latched by `CrashAt` once its op index fires: every later op
    /// fails as crash-stop until [`FaultVfs::clear`].
    crashed: AtomicBool,
}

/// A [`Vfs`] over real files with deterministic fault injection: the
/// N-th write-side operation can be made to fail in a configured way.
/// Clones share one op counter and one plan, so a test can keep a
/// handle while the store owns another.
///
/// ```
/// use alpha_store::persist::vfs::{FaultKind, FaultVfs, Vfs};
/// use std::sync::Arc;
///
/// let fault = FaultVfs::new();
/// fault.fail_at(3, FaultKind::Enospc); // the 4th write-side op fails once
/// let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
/// // … hand `vfs` to StoreBuilder::vfs and run a workload …
/// assert_eq!(fault.op_count(), 0); // nothing has drawn an op yet
/// ```
#[derive(Clone, Debug)]
pub struct FaultVfs {
    inner: OsVfs,
    state: Arc<FaultState>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultVfs {
    /// A fault VFS with no plan: behaves exactly like [`OsVfs`], but
    /// counts ops.
    pub fn new() -> Self {
        FaultVfs {
            inner: OsVfs,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                plan: Mutex::new(Plan::None),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    fn set_plan(&self, plan: Plan) {
        *self.state.plan.lock().expect("fault plan lock poisoned") = plan;
    }

    /// Fails the op with index `op` (0-based) once with `kind`; every
    /// other op succeeds.
    pub fn fail_at(&self, op: u64, kind: FaultKind) {
        self.set_plan(Plan::FailAt { op, kind });
    }

    /// Fails op `op` with `kind` and **every later op** as crash-stop —
    /// the machine died at that instant and never came back (until
    /// [`FaultVfs::clear`], which models the reboot).
    pub fn crash_at(&self, op: u64, kind: FaultKind) {
        self.set_plan(Plan::CrashAt { op, kind });
    }

    /// Fails every op with `kind` — a persistently broken disk.
    pub fn fail_always(&self, kind: FaultKind) {
        self.set_plan(Plan::FailAlways { kind });
    }

    /// Fails every `period`-th op (ops `period-1`, `2*period-1`, …)
    /// once with `kind` — a periodically flaky disk, for exercising the
    /// retry path.
    pub fn fail_every(&self, period: u64, kind: FaultKind) {
        assert!(period > 0, "fail_every period must be positive");
        self.set_plan(Plan::FailEvery { period, kind });
    }

    /// Removes the plan and un-latches any crash; ops succeed again.
    /// The op counter is *not* reset (see [`FaultVfs::reset_ops`]).
    pub fn clear(&self) {
        self.set_plan(Plan::None);
        self.state.crashed.store(false, Ordering::SeqCst);
    }

    /// Write-side ops drawn so far across every clone of this handle.
    pub fn op_count(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Resets the op counter to zero (plan untouched).
    pub fn reset_ops(&self) {
        self.state.ops.store(0, Ordering::SeqCst);
    }

    /// Draws the next op index and decides its fate.
    fn decide(&self) -> Option<FaultKind> {
        let n = self.state.ops.fetch_add(1, Ordering::SeqCst);
        if self.state.crashed.load(Ordering::SeqCst) {
            return Some(FaultKind::CrashStop);
        }
        let mut plan = self.state.plan.lock().expect("fault plan lock poisoned");
        match *plan {
            Plan::None => None,
            Plan::FailAt { op, kind } if n == op => {
                *plan = Plan::None;
                Some(kind)
            }
            Plan::FailAt { .. } => None,
            Plan::CrashAt { op, kind } if n == op => {
                self.state.crashed.store(true, Ordering::SeqCst);
                Some(kind)
            }
            Plan::CrashAt { op, .. } if n > op => {
                // Reachable only if the counter raced past `op` without
                // latching (two ops drawn concurrently); fail anyway.
                self.state.crashed.store(true, Ordering::SeqCst);
                Some(FaultKind::CrashStop)
            }
            Plan::CrashAt { .. } => None,
            Plan::FailAlways { kind } => Some(kind),
            Plan::FailEvery { period, kind } if (n + 1).is_multiple_of(period) => Some(kind),
            Plan::FailEvery { .. } => None,
        }
    }

    /// Applies a fault verdict to a non-append op: any fault is an
    /// error.
    fn gate(&self) -> io::Result<()> {
        match self.decide() {
            None => Ok(()),
            Some(kind) => Err(kind.error()),
        }
    }
}

/// A faultable file: delegates to the real file, consulting the shared
/// plan on every append/sync/truncate.
#[derive(Debug)]
struct FaultFile {
    file: Box<dyn VfsFile>,
    vfs: FaultVfs,
}

impl VfsFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.vfs.decide() {
            None => self.file.append(buf),
            Some(FaultKind::FsyncFail) => self.file.append(buf),
            Some(kind @ FaultKind::ShortWrite) => {
                self.file.append(&buf[..buf.len() / 2])?;
                Err(kind.error())
            }
            Some(FaultKind::TornWrite) => {
                // The silent half: a prefix reaches the file, the call
                // reports success. What happens next is up to the plan
                // (under `crash_at` the machine is now dead).
                self.file.append(&buf[..buf.len() / 2])
            }
            Some(kind) => Err(kind.error()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.vfs.decide() {
            None => self.file.sync(),
            Some(kind) => Err(kind.error()),
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.vfs.gate()?;
        self.file.truncate(len)
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate()?;
        let file = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            file,
            vfs: self.clone(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate()?;
        let file = self.inner.open_append(path)?;
        Ok(Box::new(FaultFile {
            file,
            vfs: self.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads are outside the fault domain (module docs).
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.sync_dir(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("alpha-store-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn os_vfs_round_trips_and_truncates() {
        let path = tmp("os-roundtrip.bin");
        let vfs = OsVfs;
        let mut f = vfs.create(&path).unwrap();
        f.append(b"hello world").unwrap();
        f.sync().unwrap();
        f.truncate(5).unwrap();
        f.append(b"!").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello!");
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"?").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello!?");
    }

    #[test]
    fn fail_at_hits_exactly_one_op() {
        let path = tmp("fault-one.bin");
        let fault = FaultVfs::new();
        // Op 0 = create, op 1 = first append (fails), op 2 = second.
        fault.fail_at(1, FaultKind::Enospc);
        let mut f = fault.create(&path).unwrap();
        let err = f.append(b"doomed").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.append(b"fine").unwrap();
        assert_eq!(fault.op_count(), 3);
        assert_eq!(fault.read(&path).unwrap(), b"fine");
    }

    #[test]
    fn crash_at_latches_until_cleared() {
        let path = tmp("fault-crash.bin");
        let fault = FaultVfs::new();
        fault.crash_at(1, FaultKind::CrashStop);
        let mut f = fault.create(&path).unwrap();
        assert!(f.append(b"a").is_err());
        assert!(f.append(b"b").is_err());
        assert!(f.sync().is_err());
        assert!(fault.rename(&path, &tmp("elsewhere.bin")).is_err());
        fault.clear();
        f.append(b"alive").unwrap();
        assert_eq!(fault.read(&path).unwrap(), b"alive");
    }

    #[test]
    fn short_and_torn_writes_leave_a_prefix() {
        let fault = FaultVfs::new();
        let short = tmp("fault-short.bin");
        fault.fail_at(1, FaultKind::ShortWrite);
        let mut f = fault.create(&short).unwrap();
        assert!(f.append(b"0123456789").is_err());
        drop(f);
        assert_eq!(fault.read(&short).unwrap(), b"01234");

        let torn = tmp("fault-torn.bin");
        fault.reset_ops();
        fault.fail_at(1, FaultKind::TornWrite);
        let mut f = fault.create(&torn).unwrap(); // op 0
        f.append(b"0123456789").unwrap(); // op 1: reports success…
        drop(f);
        assert_eq!(fault.read(&torn).unwrap(), b"01234"); // …half persisted
    }

    #[test]
    fn fsync_fail_spares_appends() {
        let path = tmp("fault-fsync.bin");
        let fault = FaultVfs::new();
        let mut f = fault.create(&path).unwrap();
        fault.fail_always(FaultKind::FsyncFail);
        f.append(b"data").unwrap();
        assert!(f.sync().is_err());
        fault.clear();
        f.sync().unwrap();
        assert_eq!(fault.read(&path).unwrap(), b"data");
    }

    #[test]
    fn fail_every_is_periodic() {
        let path = tmp("fault-periodic.bin");
        let fault = FaultVfs::new();
        let mut f = fault.create(&path).unwrap();
        fault.reset_ops();
        fault.fail_every(3, FaultKind::Eio);
        let mut failures = 0;
        for _ in 0..9 {
            if f.append(b"x").is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(fault.read(&path).unwrap(), b"xxxxxx");
    }
}
