//! Point-in-time snapshots: the complete store state in one file.
//!
//! A snapshot is a full, self-describing serialization of an
//! [`AlphaStore`](crate::AlphaStore): header (format version, hash width,
//! scheme seed, shard count, granularity, WAL linkage, statistics), then
//! the **canon node table** — the class-reachable sub-DAG of the in-memory
//! [`CanonTable`](crate::dag), emitted once as a topologically ordered,
//! node-deduplicated run — then each shard's classes (content address,
//! member/occurrence counts, tree node count, and the *position* of the
//! class's canonical root in that shared run), its term log and its
//! per-term subexpression class lists, then a trailing CRC-32 over the
//! whole body. The canonical form **is** the class identity (the paper's
//! one-canonical-form-per-class property), so nothing else is needed to
//! rebuild the store: decoding re-interns the run into a fresh canon
//! table (reproducing the sharing exactly) and reconstructs hash buckets
//! from the class hashes.
//!
//! Version-1 snapshots (one standalone canonical tree per class) still
//! decode: the shim reads each per-class tree and interns it into the
//! table, which both migrates the data and *collapses duplicates the v1
//! layout stored repeatedly*. Version-2 snapshots (shared run, but u32
//! same-shard term pointers and multiplicity-less subexpression lists)
//! decode through a second shim that widens the term pointers to full
//! `ClassId` bits and synthesizes multiplicity 1 — the counts v2 never
//! recorded, so rewrite-updates of pre-v3 terms un-index approximately
//! (merge exactness is unaffected). Neither old version is ever written
//! — the recovery checkpoint rewrites the store at the current version.
//!
//! Snapshots are written **atomically**: the bytes go to a temporary file
//! in the same directory, are `fsync`ed, and only then renamed over the
//! live `snapshot.bin` (followed by a directory sync). A crash at any
//! point leaves either the old snapshot or the new one, never a hybrid.
//!
//! The `wal_epoch`/`wal_records_applied` header fields tie the snapshot to
//! the write-ahead log: recovery replays only WAL records the snapshot has
//! not already absorbed. See the [module docs](super) and
//! `docs/PERSISTENCE_FORMAT.md`.

use super::format::{
    self, crc32, put_u16, put_u32, put_u64, take_u16, take_u32, take_u64, COMPAT_VERSION,
    FORMAT_VERSION, SNAPSHOT_MAGIC,
};
use super::vfs::Vfs;
use super::{PersistError, SnapshotOp};
use crate::dag::CanonTable;
use crate::granularity::Granularity;
use crate::stats::StoreStats;
use crate::store::{ClassId, Shard, StoredClass};
use alpha_hash::combine::HashWord;
use lambda_lang::canon::CanonRef;
use lambda_lang::debruijn::{DbArena, DbId};
use std::path::Path;

/// Everything the snapshot header records. The configuration fields must
/// agree with the WAL header and with any builder trying to reopen the
/// store.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapshotHeader {
    pub(crate) hash_bits: u32,
    pub(crate) scheme_seed: u64,
    pub(crate) shard_count: u32,
    pub(crate) granularity: Granularity,
    /// Epoch of the WAL this snapshot pairs with.
    pub(crate) wal_epoch: u64,
    /// How many records of that WAL are already folded into this snapshot
    /// (replay skips them).
    pub(crate) wal_records_applied: u64,
    pub(crate) stats: StoreStats,
}

fn put_stats(out: &mut Vec<u8>, s: &StoreStats) {
    for v in [
        s.terms_ingested,
        s.classes_created,
        s.merges_confirmed,
        s.hash_collisions,
        s.unconfirmed_merges,
        s.subterms_indexed,
        s.subterm_merges_confirmed,
        s.subterms_skipped_min_nodes,
    ] {
        put_u64(out, v);
    }
}

fn take_stats(input: &mut &[u8]) -> Result<StoreStats, PersistError> {
    Ok(StoreStats {
        terms_ingested: take_u64(input)?,
        classes_created: take_u64(input)?,
        merges_confirmed: take_u64(input)?,
        hash_collisions: take_u64(input)?,
        unconfirmed_merges: take_u64(input)?,
        subterms_indexed: take_u64(input)?,
        subterm_merges_confirmed: take_u64(input)?,
        subterms_skipped_min_nodes: take_u64(input)?,
    })
}

/// Serializes a consistent view of the shards (the caller holds the locks)
/// into the full snapshot byte image, trailing CRC included. `dag` is the
/// extracted class-reachable node run and `class_roots` the per-class
/// positions in it, in shard-major class order (the order
/// `shards.flat_map(classes)` yields).
pub(crate) fn encode_snapshot<H: HashWord>(
    header: &SnapshotHeader,
    shards: &[&Shard<H>],
    dag: &DbArena,
    class_roots: &[DbId],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, header.hash_bits);
    put_u64(&mut out, header.scheme_seed);
    put_u32(&mut out, header.shard_count);
    format::put_granularity(&mut out, header.granularity);
    put_u64(&mut out, header.wal_epoch);
    put_u64(&mut out, header.wal_records_applied);
    put_stats(&mut out, &header.stats);

    // The node table, once.
    format::put_dag(&mut out, dag);

    debug_assert_eq!(shards.len(), header.shard_count as usize);
    debug_assert_eq!(
        class_roots.len(),
        shards.iter().map(|s| s.classes.len()).sum::<usize>()
    );
    let mut root_cursor = 0usize;
    for shard in shards {
        put_u32(
            &mut out,
            u32::try_from(shard.classes.len()).expect("classes fit u32"),
        );
        for class in &shard.classes {
            format::put_hash(&mut out, class.hash);
            put_u64(&mut out, class.members);
            put_u64(&mut out, class.occurrences);
            put_u64(&mut out, class.node_count);
            put_u32(&mut out, class_roots[root_cursor].index() as u32);
            root_cursor += 1;
        }
        put_u32(
            &mut out,
            u32::try_from(shard.terms.len()).expect("terms fit u32"),
        );
        // v3: full ClassId bits — an updated term's class may live in a
        // different shard than the term id.
        for &class_bits in &shard.terms {
            put_u64(&mut out, class_bits);
        }
        for subs in &shard.term_subs {
            put_u32(&mut out, u32::try_from(subs.len()).expect("subs fit u32"));
            for &(bits, multiplicity) in subs.iter() {
                put_u64(&mut out, bits);
                put_u32(&mut out, multiplicity);
            }
        }
    }

    let crc = crc32(&out[SNAPSHOT_MAGIC.len()..]);
    put_u32(&mut out, crc);
    out
}

/// Decodes a snapshot image back into its header, rebuilt shards, and the
/// **format version the bytes were written at** (the open path must know:
/// an old-version snapshot disqualifies the clean-reopen fast path, since
/// only the checkpoint migrates it). Canonical forms are interned into
/// `table` (so the returned shards' [`CanonRef`]s address it). Verifies
/// the trailing CRC before reading anything else. Accepts the current
/// version and, through read-only shims, versions 1 and 2.
pub(crate) fn decode_snapshot<H: HashWord>(
    bytes: &[u8],
    table: &CanonTable,
) -> Result<(SnapshotHeader, Vec<Shard<H>>, u16), PersistError> {
    let corrupt = |context: &str| PersistError::Corrupt {
        context: format!("snapshot: {context}"),
    };
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(corrupt("file shorter than magic + CRC"));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("magic mismatch"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(&body[SNAPSHOT_MAGIC.len()..]) != stored_crc {
        return Err(corrupt("body CRC mismatch"));
    }

    let mut input = &body[SNAPSHOT_MAGIC.len()..];
    let version = take_u16(&mut input)?;
    if !format::version_supported(version) {
        return Err(PersistError::Mismatch {
            context: format!(
                "snapshot format version {version}, expected {FORMAT_VERSION} \
                 (or compat {COMPAT_VERSION}..{})",
                FORMAT_VERSION - 1
            ),
        });
    }
    let header = SnapshotHeader {
        hash_bits: take_u32(&mut input)?,
        scheme_seed: take_u64(&mut input)?,
        shard_count: take_u32(&mut input)?,
        granularity: format::take_granularity(&mut input)?,
        wal_epoch: take_u64(&mut input)?,
        wal_records_applied: take_u64(&mut input)?,
        stats: take_stats(&mut input)?,
    };
    if header.hash_bits != H::BITS {
        return Err(PersistError::Mismatch {
            context: format!(
                "snapshot hashes are {}-bit, store type is {}-bit",
                header.hash_bits,
                H::BITS
            ),
        });
    }

    // v2+: one shared node run up front, re-interned once; classes
    // address positions. v1: no shared run; classes carry standalone
    // trees.
    let node_refs: Vec<CanonRef> = if version >= 2 {
        let dag = format::take_dag(&mut input)?;
        table.intern_arena_refs(&dag)
    } else {
        Vec::new()
    };

    let mut shards = Vec::with_capacity(header.shard_count.min(1 << 16) as usize);
    for shard_index in 0..header.shard_count {
        let class_count = take_u32(&mut input)? as usize;
        let mut classes = Vec::with_capacity(class_count.min(1 << 20));
        for _ in 0..class_count {
            let hash = format::take_hash::<H>(&mut input)?;
            let members = take_u64(&mut input)?;
            let occurrences = take_u64(&mut input)?;
            let (canon, node_count) = if version >= 2 {
                let node_count = take_u64(&mut input)?;
                let pos = take_u32(&mut input)? as usize;
                let canon = node_refs
                    .get(pos)
                    .copied()
                    .ok_or_else(|| corrupt("class canon position out of range"))?;
                (canon, node_count)
            } else {
                // v1 shim: a standalone tree; interning migrates it into
                // the shared table (collapsing duplicates as it goes).
                let (tree, root) = format::take_canon(&mut input)?;
                let node_count = tree.len() as u64;
                (table.intern_arena(&tree, root), node_count)
            };
            classes.push(StoredClass {
                hash,
                canon,
                node_count,
                members,
                occurrences,
            });
        }
        let term_count = take_u32(&mut input)? as usize;
        let mut terms = Vec::with_capacity(term_count.min(1 << 20));
        for _ in 0..term_count {
            if version >= 3 {
                // Full ClassId bits; validated against every shard's
                // class count once all shards are decoded.
                terms.push(take_u64(&mut input)?);
            } else {
                // v1/v2 shim: a u32 index into this shard's own classes.
                let class_index = take_u32(&mut input)?;
                if class_index as usize >= class_count {
                    return Err(corrupt("term references a class out of range"));
                }
                terms.push(
                    ClassId {
                        shard: shard_index as u16,
                        index: class_index,
                    }
                    .to_bits(),
                );
            }
        }
        let mut term_subs = Vec::with_capacity(term_count.min(1 << 20));
        for _ in 0..term_count {
            let len = take_u32(&mut input)? as usize;
            let mut pairs = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let bits = take_u64(&mut input)?;
                let multiplicity = if version >= 3 {
                    let m = take_u32(&mut input)?;
                    if m == 0 {
                        return Err(corrupt("zero subexpression multiplicity"));
                    }
                    m
                } else {
                    // v1/v2 shim: occurrence counts were never recorded.
                    1
                };
                pairs.push((bits, multiplicity));
            }
            term_subs.push(pairs.into_boxed_slice());
        }
        shards.push(Shard::from_parts(classes, terms, term_subs));
    }
    if !input.is_empty() {
        return Err(corrupt("trailing bytes after the last shard"));
    }
    // Cross-shard term pointers (v3) can only be range-checked once every
    // shard's class list is known.
    for shard in &shards {
        for &class_bits in &shard.terms {
            let cid = ClassId::from_bits(class_bits);
            let in_range = shards
                .get(cid.shard as usize)
                .is_some_and(|s| (cid.index as usize) < s.classes.len());
            if !in_range {
                return Err(corrupt("term references a class out of range"));
            }
        }
    }
    Ok((header, shards, version))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename over the destination, directory sync. A crash leaves
/// either the old file or the new one. Every step failure surfaces as a
/// typed [`PersistError::Snapshot`] naming the failed [`SnapshotOp`] —
/// including the trailing directory sync, without which the *rename
/// itself* is not durable and the atomic protocol has not completed. On
/// any failure before the rename lands, the temp file is removed
/// (best-effort) so a degraded disk does not accumulate orphans and the
/// previous snapshot remains the authoritative one.
pub(crate) fn write_atomically(
    vfs: &dyn Vfs,
    path: &Path,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let dir = path.parent().ok_or_else(|| PersistError::Corrupt {
        context: "snapshot path has no parent directory".to_owned(),
    })?;
    let tmp = path.with_extension("tmp");
    let snap_err =
        |op: SnapshotOp| move |source: std::io::Error| PersistError::Snapshot { op, source };
    let staged = (|| {
        let mut file = vfs.create(&tmp).map_err(snap_err(SnapshotOp::Create))?;
        file.append(bytes).map_err(snap_err(SnapshotOp::Write))?;
        file.sync().map_err(snap_err(SnapshotOp::Sync))?;
        Ok(())
    })();
    if let Err(e) = staged {
        // Best-effort cleanup: on a crashed/full disk the remove may fail
        // too; recovery ignores `.tmp` files either way.
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    if let Err(source) = vfs.rename(&tmp, path) {
        let _ = vfs.remove_file(&tmp);
        return Err(PersistError::Snapshot {
            op: SnapshotOp::Rename,
            source,
        });
    }
    // Persist the rename itself. A failure here means the new snapshot
    // may vanish on power loss — the protocol must report it, not
    // swallow it (platforms without directory fsync degrade to success
    // inside the Vfs impl).
    vfs.sync_dir(dir).map_err(snap_err(SnapshotOp::DirSync))
}

/// Reads and decodes a snapshot file into shards addressing `table`,
/// also reporting the on-disk format version.
pub(crate) fn read_snapshot<H: HashWord>(
    vfs: &dyn Vfs,
    path: &Path,
    table: &CanonTable,
) -> Result<(SnapshotHeader, Vec<Shard<H>>, u16), PersistError> {
    let bytes = vfs.read(path)?;
    decode_snapshot(&bytes, table)
}
