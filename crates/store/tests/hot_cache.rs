//! Correctness tests for the per-shard hot-class merge cache: confirming
//! a merge through the cached `(hash, CanonRef)` short-circuit must be
//! observationally identical to confirming it through the `eq_frontier`
//! DAG walk — same classes, same census, zero unconfirmed merges — and
//! the cache must come back cold (and correct) across checkpoint and
//! recovery.
//!
//! Attribution ground truth (single shard, sequential inserts of one
//! alpha-class): insert #1 creates the class, insert #2 is a frontier
//! walk (which populates the cache), inserts #3+ are cache hits — so the
//! deterministic test pins `merge_confirm_walk == 1` and
//! `merge_confirm_cached == n - 2` exactly.

use alpha_store::{AlphaStore, ClassId};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alpha-store-hotcache-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A duplicate-heavy corpus: `shapes` distinct generator outputs, each
/// appearing `copies` times as alpha-renamed variants — the hot-class
/// regime the cache exists for.
fn hot_corpus(arena: &mut ExprArena, seed: u64, shapes: usize, copies: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(shapes * copies);
    for shape in 0..shapes {
        let mut rng = StdRng::seed_from_u64(seed ^ shape as u64);
        let size = 8 + (shape % 4) * 10;
        let mut scratch = ExprArena::new();
        let root = match shape % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        for _ in 0..copies {
            roots.push(uniquify_into(&scratch, root, arena));
        }
    }
    roots
}

/// Everything observable about a store's classes, keyed by canonical text:
/// members, occurrences, node counts. Equal censuses mean the two stores
/// hold the same alpha-classes with the same bookkeeping — however their
/// merges were confirmed.
fn census(store: &AlphaStore<u64>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut out = BTreeMap::new();
    for class in store.classes() {
        let old = out.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
        assert!(old.is_none(), "duplicate canonical form across classes");
    }
    out
}

#[cfg(feature = "obs")]
fn confirmations(store: &AlphaStore<u64>) -> (u64, u64, u64) {
    let report = store.obs_report();
    (
        report.counter("alpha_store_merge_confirm_ref").unwrap(),
        report.counter("alpha_store_merge_confirm_walk").unwrap(),
        report.counter("alpha_store_merge_confirm_cached").unwrap(),
    )
}

/// The exact walk-then-cache attribution sequence for one hot class.
#[cfg(feature = "obs")]
#[test]
fn one_hot_class_walks_once_then_hits_the_cache() {
    let mut rng = StdRng::seed_from_u64(0x407);
    let mut scratch = ExprArena::new();
    let shape = expr_gen::balanced(&mut scratch, 24, &mut rng);

    let store: AlphaStore<u64> = AlphaStore::builder().seed(3).shards(1).build();
    let mut arena = ExprArena::new();
    let n = 6usize;
    let mut class: Option<ClassId> = None;
    for _ in 0..n {
        let root = uniquify_into(&scratch, shape, &mut arena);
        let outcome = store.insert(&arena, root);
        match class {
            None => class = Some(outcome.class),
            Some(c) => assert_eq!(outcome.class, c, "all variants land in one class"),
        }
    }

    let stats = store.stats();
    assert!(stats.is_exact(), "cache hits must stay exact");
    assert_eq!(store.num_classes(), 1);
    assert_eq!(store.members(class.unwrap()), n as u64);
    assert_eq!(stats.merges_confirmed, (n - 1) as u64);

    let (by_ref, by_walk, by_cache) = confirmations(&store);
    assert_eq!(by_ref, 0, "fresh prepares are frontier entries");
    assert_eq!(by_walk, 1, "only the cache-cold merge walks the DAG");
    assert_eq!(
        by_cache,
        (n - 2) as u64,
        "every merge after the cache-populating walk short-circuits"
    );
}

/// Recovery starts the cache cold: the first post-reopen merge per class
/// walks again, later ones hit the rebuilt cache — and the restored
/// classes absorb the new members exactly as the pre-crash store would.
#[cfg(feature = "obs")]
#[test]
fn cache_rebuilds_cold_across_checkpoint_and_recovery() {
    let dir = TempDir::new("cold");
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(11)
            .shards(2)
            .chunk_entries(16)
    };

    let mut arena = ExprArena::new();
    let roots = hot_corpus(&mut arena, 0xC01D, 4, 5);
    let before;
    {
        let store = builder().open_durable(dir.path()).expect("create durable");
        store.insert_batch(&arena, &roots);
        assert!(store.stats().is_exact());
        store.checkpoint().expect("checkpoint");
        before = census(&store);
    }

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(census(&reopened), before, "recovery preserves the census");
    // Obs counters are process-local and start at zero, while restored
    // StoreStats carry the pre-crash merge totals — so reconcile deltas.
    let merges_at_reopen = reopened.stats().merges_confirmed;
    assert_eq!(
        confirmations(&reopened),
        (0, 0, 0),
        "fresh process, fresh counters"
    );

    // Re-ingest the same corpus: every insert is now a confirmed merge.
    let mut arena2 = ExprArena::new();
    let roots2 = hot_corpus(&mut arena2, 0xC01D, 4, 5);
    reopened.insert_batch(&arena2, &roots2);

    let stats = reopened.stats();
    assert!(stats.is_exact(), "post-recovery cache hits stay exact");
    let (by_ref, by_walk, by_cache) = confirmations(&reopened);
    assert_eq!(
        by_ref + by_walk + by_cache,
        stats.merges_confirmed - merges_at_reopen,
        "every post-reopen merge is attributed to exactly one path"
    );
    assert!(by_walk >= 1, "the cold cache forces at least one walk");
    assert!(
        by_cache >= 1,
        "repeat merges on a hot class hit the rebuilt cache"
    );

    // The census is the pre-crash one with every class's members and
    // occurrences doubled — byte-identical canonical forms.
    let after = census(&reopened);
    assert_eq!(after.len(), before.len());
    for (text, (members, occurrences, nodes)) in &before {
        assert_eq!(
            after.get(text),
            Some(&(members * 2, occurrences * 2, *nodes)),
            "class {text:?} after re-ingest"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached confirmation ≡ frontier-walk confirmation, propositionally:
    /// a sequential single-shard store (maximal cache hits) and a
    /// concurrent multi-shard store build identical censuses from the
    /// same duplicate-heavy corpus, both with zero unconfirmed merges,
    /// and both attribute every confirmed merge to exactly one path.
    #[test]
    fn cached_and_walked_confirmation_build_identical_stores(
        seed in 0u64..1_000,
        shapes in 2usize..6,
        copies in 4usize..9,
        threads in 2usize..5,
    ) {
        let mut arena = ExprArena::new();
        let roots = hot_corpus(&mut arena, seed, shapes, copies);

        // Sequential, one shard: after each shape's first merge walks,
        // every later copy must hit the cache.
        let hot: AlphaStore<u64> = AlphaStore::builder().seed(5).shards(1).build();
        for &r in &roots {
            hot.insert(&arena, r);
        }

        // Concurrent, sharded: interleavings decide walk vs cache hit
        // per merge; the outcome must not.
        let cold: AlphaStore<u64> = AlphaStore::builder().seed(5).shards(4).build();
        let chunk = roots.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in roots.chunks(chunk) {
                scope.spawn(|| cold.insert_batch(&arena, part));
            }
        });

        prop_assert!(hot.stats().is_exact());
        prop_assert!(cold.stats().is_exact());
        prop_assert_eq!(census(&hot), census(&cold));
        prop_assert_eq!(hot.num_classes(), shapes);

        #[cfg(feature = "obs")]
        {
            for store in [&hot, &cold] {
                let (by_ref, by_walk, by_cache) = confirmations(store);
                prop_assert_eq!(
                    by_ref + by_walk + by_cache,
                    store.stats().merges_confirmed,
                    "exactly one confirmation path per merge"
                );
            }
            // The sequential store's attribution is fully determined:
            // one walk per shape, cache hits for everything else.
            let (_, by_walk, by_cache) = confirmations(&hot);
            prop_assert_eq!(by_walk, shapes as u64);
            prop_assert_eq!(by_cache, (shapes * (copies - 2)) as u64);
        }
    }
}
