//! Differential oracle proptests for incremental update: a store that
//! ingests a corpus and then applies a sequence of random **valid**
//! rewrites through [`AlphaStore::update`] must be observationally
//! identical to a fresh store that plain-ingests the final corpus — the
//! effective rewritten terms, as returned by
//! [`AlphaStore::preview_rewrite`] *before* each update was applied.
//!
//! Compared surfaces, at u64 and u128 hash widths × `Roots` and
//! `Subexpressions` granularity:
//!
//! * the **partition** of the live terms into classes;
//! * the **live census**: canonical text → (members, occurrences, node
//!   count) over every class with at least one live occurrence (stale
//!   classes an update emptied stay resident at zero, and a fresh build
//!   never creates them — so they are exactly the difference);
//! * `terms_ingested` (updates repoint, they never mint terms) and
//!   **exactness** — zero unconfirmed merges on both sides.
//!
//! `classes_created` / `subterms_indexed` / skip counters are
//! deliberately *not* compared: they are trajectory totals (every
//! intermediate class ever created), not final-state facts.
//!
//! Around the proptests: the capture-avoidance contract (a replacement
//! naming an outer machine binder is a typed refusal that changes
//! nothing) and delta-WAL durability (a crash after updates recovers to
//! the same oracle state through replay).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_store::{AlphaStore, Granularity, Rewrite, StoreError, TermId};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alpha-store-update-oracle-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A varied corpus with alpha-duplicates (small seed pool, every other
/// term alpha-renamed).
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 5));
        let size = 4 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// A small random replacement expression. The generators mint binder
/// names like `b3_17` and the free fallback `free` — never a `%`, so
/// every patch passes the closed-over-machine-names check by
/// construction.
fn random_patch(arena: &mut ExprArena, rng: &mut StdRng) -> NodeId {
    let size = 1 + rng.random_range(0..6usize);
    let mut scratch = ExprArena::new();
    let root = match rng.random_range(0..3u32) {
        0 => expr_gen::balanced(&mut scratch, size, rng),
        1 => expr_gen::unbalanced(&mut scratch, size, rng),
        _ => expr_gen::arithmetic(&mut scratch, 8, rng),
    };
    arena.import_subtree(&scratch, root)
}

/// Every path (root-to-node child-slot sequence) into `root`, the empty
/// path included — the full space of valid rewrite targets.
fn all_paths(arena: &ExprArena, root: NodeId) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut stack = vec![(root, Vec::new())];
    while let Some((node, path)) = stack.pop() {
        for (slot, child) in arena.node(node).children().into_iter().enumerate() {
            let mut next = path.clone();
            next.push(slot as u32);
            stack.push((child, next));
        }
        out.push(path);
    }
    out
}

/// Canonical text → (members, occurrences, node count) over the classes
/// with at least one live occurrence. Updates leave emptied classes
/// resident at zero; a fresh build has no such residue, so the *live*
/// view is the surface both must agree on.
fn live_census<H: HashWord>(store: &AlphaStore<H>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut census = BTreeMap::new();
    for class in store.classes() {
        if store.occurrences(class) == 0 {
            continue;
        }
        let old = census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
        assert!(old.is_none(), "live classes have unique canon");
    }
    census
}

/// A term's latest effective form: the corpus original, or a preview in
/// its **own fresh arena**. The per-preview arena matters in
/// `Subexpressions` mode: an open subterm referencing an enclosing
/// binder is indexed with that binder's *name* free, and the store
/// rebuilds each updated term in a fresh arena whose fresh-name counter
/// starts at zero — the oracle must mint the same names.
enum Effective {
    Original(NodeId),
    Rewritten(ExprArena, NodeId),
}

/// Applies `rounds` random valid rewrites to a freshly ingested corpus,
/// maintaining the oracle corpus (each term's latest effective form) on
/// the side, and returns everything needed to compare or recover.
fn drive_updates<H: HashWord>(
    store: &AlphaStore<H>,
    arena: &ExprArena,
    roots: &[NodeId],
    seed: u64,
    rounds: usize,
) -> (Vec<TermId>, Vec<Effective>) {
    let outcomes = store.try_insert_batch(arena, roots).expect("corpus ingest");
    let terms: Vec<TermId> = outcomes.iter().map(|o| o.term).collect();
    let mut effective: Vec<Effective> = roots.iter().map(|&r| Effective::Original(r)).collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0F00D);
    for _ in 0..rounds {
        let i = rng.random_range(0..terms.len());
        let term = terms[i];

        // A valid target: any node of the class's canonical
        // representative — the tree the path is interpreted against.
        let mut rep_arena = ExprArena::new();
        let rep = store.representative_into(store.class_of(term), &mut rep_arena);
        let paths = all_paths(&rep_arena, rep);
        let path = &paths[rng.random_range(0..paths.len())];

        let mut patch_arena = ExprArena::new();
        let patch = random_patch(&mut patch_arena, &mut rng);
        let rw = Rewrite {
            path,
            arena: &patch_arena,
            root: patch,
        };

        // The oracle learns the effective term *before* the update
        // mutates the class the preview reads from.
        let mut preview_arena = ExprArena::new();
        let preview = store
            .preview_rewrite(term, rw, &mut preview_arena)
            .expect("valid rewrite previews");
        let out = store.try_update(term, rw).expect("valid rewrite applies");
        assert_eq!(out.term, term, "updates repoint the same handle");
        assert_eq!(store.class_of(term), out.class);
        effective[i] = Effective::Rewritten(preview_arena, preview);
    }
    (terms, effective)
}

/// Ingests the final effective corpus into `oracle`, term by term (each
/// rewritten term lives in its own arena), returning the root classes.
fn ingest_effective<H: HashWord>(
    oracle: &AlphaStore<H>,
    arena: &ExprArena,
    effective: &[Effective],
) -> Vec<alpha_store::ClassId> {
    effective
        .iter()
        .map(|e| match e {
            Effective::Original(root) => oracle.insert(arena, *root).class,
            Effective::Rewritten(own, root) => oracle.insert(own, *root).class,
        })
        .collect()
}

/// The oracle equivalence for one (width, granularity) configuration.
fn check_against_fresh_build<H: HashWord>(seed: u64, granularity: Granularity) {
    let scheme: HashScheme<H> = HashScheme::new(0x0DD5 ^ seed);
    let build = || -> AlphaStore<H> {
        AlphaStore::builder()
            .scheme(scheme)
            .shards(4)
            .granularity(granularity)
            .build()
    };

    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, seed, 12);
    let store = build();
    let (terms, effective) = drive_updates(&store, &arena, &roots, seed, 10);

    // Oracle: plain ingest of the final corpus into a fresh store.
    let oracle = build();
    let oracle_classes = ingest_effective(&oracle, &arena, &effective);

    // Partition: live terms i and j share a class in the updated store
    // iff their effective forms do in the fresh build.
    for i in 0..terms.len() {
        for j in 0..i {
            assert_eq!(
                store.class_of(terms[i]) == store.class_of(terms[j]),
                oracle_classes[i] == oracle_classes[j],
                "partition disagreement on pair ({i},{j})"
            );
        }
    }

    // Live census: identical classes with identical bookkeeping.
    assert_eq!(live_census(&store), live_census(&oracle));

    // Updates never mint terms, and exactness survives every rewrite.
    let s = store.stats();
    let o = oracle.stats();
    assert_eq!(s.terms_ingested, o.terms_ingested);
    assert_eq!(store.num_terms(), roots.len());
    assert!(s.is_exact(), "unconfirmed merges after updates");
    assert!(o.is_exact());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn updated_store_matches_fresh_build_at_roots(seed in any::<u64>()) {
        check_against_fresh_build::<u64>(seed, Granularity::Roots);
        check_against_fresh_build::<u128>(seed, Granularity::Roots);
    }

    #[test]
    fn updated_store_matches_fresh_build_at_subexpressions(
        seed in any::<u64>(),
        floor_wide in any::<bool>(),
    ) {
        let g = Granularity::Subexpressions { min_nodes: if floor_wide { 3 } else { 1 } };
        check_against_fresh_build::<u64>(seed, g);
        check_against_fresh_build::<u128>(seed, g);
    }

    /// Delta-WAL durability: after random updates on a durable store, a
    /// crash (drop without checkpoint) and reopen must land on exactly
    /// the oracle state — every delta replayed through normal ingest,
    /// zero unconfirmed merges.
    #[test]
    fn updates_survive_crash_and_replay(seed in any::<u64>()) {
        let dir = TempDir::new("replay");
        let mut arena = ExprArena::new();
        let roots = corpus(&mut arena, seed, 10);

        let effective = {
            let store = AlphaStore::<u64>::builder()
                .seed(0xD17A ^ seed)
                .shards(4)
                .subexpressions(2)
                .open_durable(dir.path())
                .expect("open durable");
            let (_, effective) = drive_updates(&store, &arena, &roots, seed, 8);
            effective
        }; // drop without checkpoint: recovery must replay the deltas

        let recovered = AlphaStore::<u64>::builder()
            .seed(0xD17A ^ seed)
            .shards(4)
            .subexpressions(2)
            .open_durable(dir.path())
            .expect("reopen after updates");
        let oracle = AlphaStore::<u64>::builder()
            .seed(0xD17A ^ seed)
            .shards(4)
            .subexpressions(2)
            .build();
        ingest_effective(&oracle, &arena, &effective);

        prop_assert_eq!(live_census(&recovered), live_census(&oracle));
        prop_assert_eq!(recovered.num_terms(), roots.len());
        prop_assert!(recovered.stats().is_exact(), "replayed updates stay exact");
    }
}

/// The capture-avoidance contract at the public surface: a replacement
/// that names an **outer** machine binder of the host spine — one that
/// would be captured by the by-name splice — is refused with the typed
/// [`StoreError::InvalidRewrite`] before any state changes.
#[test]
fn replacement_naming_an_outer_binder_is_a_typed_refusal() {
    use lambda_lang::parse::parse;

    let store: AlphaStore<u64> = AlphaStore::builder().seed(0xCA97).subexpressions(1).build();
    let mut arena = ExprArena::new();
    let t = parse(&mut arena, r"\x. \y. x + y").unwrap();
    let ins = store.insert(&arena, t);
    let census_before = live_census(&store);

    // The outer lambda's canonical binder is machine-named (`…%N`);
    // splicing a patch that mentions it at the *inner* body would
    // silently capture it — exactly what the contract forbids.
    let mut rep_arena = ExprArena::new();
    let rep = store.representative_into(ins.class, &mut rep_arena);
    let outer = rep_arena
        .node(rep)
        .binder()
        .expect("representative is a lambda");
    let outer_name = rep_arena.name(outer).to_owned();
    assert!(
        outer_name.contains('%'),
        "canonical binders are machine-named"
    );

    let mut patch_arena = ExprArena::new();
    let patch = patch_arena.var_named(&outer_name);
    let err = store
        .try_update(
            ins.term,
            Rewrite {
                path: &[0, 0], // the inner lambda's body, under both binders
                arena: &patch_arena,
                root: patch,
            },
        )
        .expect_err("capturing replacement must be refused");
    assert!(
        matches!(err, StoreError::InvalidRewrite { .. }),
        "typed refusal, got: {err}"
    );

    // Nothing changed: same class, same census, still exact.
    assert_eq!(store.class_of(ins.term), ins.class);
    assert_eq!(live_census(&store), census_before);
    assert!(store.stats().is_exact());
}

/// Unknown handles — including out-of-range bits a wire client could
/// send — are typed refusals too, never panics.
#[test]
fn unknown_term_handles_are_typed_refusals() {
    use lambda_lang::parse::parse;

    let store: AlphaStore<u64> = AlphaStore::builder().seed(0x9AD).build();
    let mut arena = ExprArena::new();
    let t = parse(&mut arena, r"\x. x").unwrap();
    store.insert(&arena, t);

    let patch = parse(&mut arena, "1").unwrap();
    for bogus in [u64::MAX, 1 << 32, 0xFFFF_0000_0000_0000] {
        let err = store
            .try_update(
                TermId::from_bits(bogus),
                Rewrite {
                    path: &[],
                    arena: &arena,
                    root: patch,
                },
            )
            .expect_err("unissued handle");
        assert!(matches!(err, StoreError::InvalidRewrite { .. }), "{err}");
    }
}
