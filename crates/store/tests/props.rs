//! Property tests for the alpha-store, checking the three contract points
//! of the subsystem:
//!
//! (a) `insert` is **idempotent modulo alpha** — alpha-renamed copies of a
//!     term land in the class the original created;
//! (b) the store's partition of a term's subexpressions **agrees with the
//!     ground truth** (`alpha_hash::equiv::ground_truth_classes`, the
//!     O(n³) pairwise predicate);
//! (c) **concurrent ingest is equivalent to sequential ingest** — 8
//!     threads racing on the shards produce the same class partition as a
//!     single thread, with identical stats invariants.

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::equiv::{ground_truth_classes, same_partition};
use alpha_store::{AlphaStore, ClassId, Granularity};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use lambda_lang::visit::postorder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn scheme() -> HashScheme<u64> {
    HashScheme::new(0x57_0E)
}

/// A varied small corpus: balanced, unbalanced and arithmetic terms, with
/// seeds drawn from a small pool so alpha-duplicates occur, plus an
/// alpha-renamed (uniquified) variant of every other term.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 7));
        let size = 4 + (i % 5) * 9;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            // Alpha-renamed variant: same class, different binder names.
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Brute-force containment oracle: is some subexpression of some ingested
/// term alpha-equivalent to `pattern`, subject to the store's granularity?
/// Enumerates every (ingested subexpression, pattern) pair with the O(n)
/// reference predicate `alpha_eq` — the quadratic ground truth the
/// store's one-probe `contains` must agree with exactly.
fn oracle_contains(
    arena: &ExprArena,
    ingested: &[NodeId],
    pattern: NodeId,
    granularity: Granularity,
) -> bool {
    ingested.iter().any(|&t| match granularity {
        Granularity::Roots => lambda_lang::alpha_eq(arena, t, arena, pattern),
        Granularity::Subexpressions { .. } => postorder(arena, t).into_iter().any(|s| {
            // Roots are always indexed; proper subterms only above the
            // floor.
            (s == t || arena.subtree_size(s) >= granularity.min_nodes())
                && lambda_lang::alpha_eq(arena, s, arena, pattern)
        }),
    })
}

/// One store at the given width/granularity, checked against the oracle
/// for every pattern.
fn check_contains_against_oracle<H: HashWord>(
    arena: &ExprArena,
    ingested: &[NodeId],
    patterns: &[NodeId],
    granularity: Granularity,
) -> Result<(), TestCaseError> {
    let store: AlphaStore<H> = AlphaStore::builder()
        .scheme(HashScheme::new(0x0C_A1))
        .shards(4)
        .granularity(granularity)
        .build();
    store.insert_batch(arena, ingested);
    prop_assert!(store.stats().is_exact());
    for &pattern in patterns {
        let hit = store.contains(arena, pattern).is_some();
        let truth = oracle_contains(arena, ingested, pattern, granularity);
        prop_assert_eq!(
            hit,
            truth,
            "contains disagrees with the alpha_eq oracle ({:?})",
            granularity
        );
    }
    Ok(())
}

/// Groups term indexes by their store class.
fn partition_of(classes: &[ClassId]) -> Vec<Vec<usize>> {
    let mut groups: HashMap<ClassId, Vec<usize>> = HashMap::new();
    for (i, &c) in classes.iter().enumerate() {
        groups.entry(c).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort();
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Alpha-renaming never creates a new class: for any generated
    /// term, inserting an alpha-renamed copy merges into the original's
    /// class without growing the store.
    #[test]
    fn insert_is_idempotent_modulo_alpha(seed in any::<u64>(), size in 3usize..90) {
        let store = AlphaStore::new(scheme());
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch = ExprArena::new();
        let built = expr_gen::balanced(&mut scratch, size, &mut rng);
        let root = arena.import_subtree(&scratch, built);
        let renamed = uniquify_into(&scratch, built, &mut arena);

        let first = store.insert(&arena, root);
        let classes_after_first = store.num_classes();
        let second = store.insert(&arena, renamed);

        prop_assert!(first.fresh);
        prop_assert!(!second.fresh);
        prop_assert_eq!(first.class, second.class);
        prop_assert_eq!(store.num_classes(), classes_after_first);
        prop_assert_eq!(store.members(first.class), 2);
        prop_assert!(store.stats().is_exact());
    }

    /// (b) Ingesting every subexpression of a random term produces exactly
    /// the ground-truth alpha-equivalence partition.
    #[test]
    fn store_partition_matches_ground_truth(seed in any::<u64>(), size in 3usize..70) {
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let root = match size % 3 {
            0 => expr_gen::balanced(&mut arena, size, &mut rng),
            1 => expr_gen::unbalanced(&mut arena, size, &mut rng),
            _ => expr_gen::arithmetic(&mut arena, size.max(8), &mut rng),
        };

        let store = AlphaStore::new(scheme());
        let nodes = lambda_lang::visit::postorder(&arena, root);
        let outcomes = store.insert_batch(&arena, &nodes);

        // Store partition over the nodes, as Vec<Vec<NodeId>>.
        let mut groups: HashMap<ClassId, Vec<NodeId>> = HashMap::new();
        for (node, outcome) in nodes.iter().zip(&outcomes) {
            groups.entry(outcome.class).or_default().push(*node);
        }
        let store_partition: Vec<Vec<NodeId>> = groups.into_values().collect();

        let truth = ground_truth_classes(&arena, root);
        prop_assert!(
            same_partition(&store_partition, &truth),
            "store partition diverges from ground truth"
        );
        prop_assert!(store.stats().is_exact());
        prop_assert_eq!(store.num_classes(), truth.len());
    }

    /// (c) Concurrent ingest from 8 threads yields the same class
    /// partition as sequential ingest of the same corpus.
    #[test]
    fn concurrent_ingest_matches_sequential(seed in any::<u64>()) {
        let mut arena = ExprArena::new();
        let roots = corpus(&mut arena, seed, 48);

        // Sequential reference.
        let sequential = AlphaStore::with_shards(scheme(), 8);
        let seq_classes: Vec<ClassId> =
            roots.iter().map(|&r| sequential.insert(&arena, r).class).collect();

        // Concurrent: 8 threads, one chunk each, racing on 8 shards.
        let concurrent = AlphaStore::with_shards(scheme(), 8);
        std::thread::scope(|scope| {
            for chunk in roots.chunks(roots.len().div_ceil(8)) {
                scope.spawn(|| concurrent.insert_batch(&arena, chunk));
            }
        });
        // Class ids differ between runs (creation order is racy), so
        // compare the partitions, recovered via lookup.
        let conc_classes: Vec<ClassId> = roots
            .iter()
            .map(|&r| concurrent.lookup(&arena, r).expect("ingested term found"))
            .collect();

        prop_assert_eq!(partition_of(&seq_classes), partition_of(&conc_classes));
        prop_assert_eq!(sequential.num_terms(), concurrent.num_terms());
        prop_assert_eq!(sequential.num_classes(), concurrent.num_classes());

        let seq_stats = sequential.stats();
        let conc_stats = concurrent.stats();
        prop_assert!(conc_stats.is_exact());
        prop_assert_eq!(seq_stats.terms_ingested, conc_stats.terms_ingested);
        prop_assert_eq!(seq_stats.classes_created, conc_stats.classes_created);
        prop_assert_eq!(seq_stats.merges_confirmed, conc_stats.merges_confirmed);
    }

    /// `contains` answers exactly the brute-force containment predicate —
    /// for every subexpression pattern, at u64 and u128 hash widths, in
    /// both granularity modes (and at two `min_nodes` floors).
    #[test]
    fn contains_agrees_with_bruteforce_oracle(seed in any::<u64>(), size in 3usize..40) {
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(seed);

        // Two ingested terms of different families, plus an alpha-renamed
        // copy of the first so patterns hit under renaming.
        let a = expr_gen::balanced(&mut arena, size, &mut rng);
        let b = expr_gen::arithmetic(&mut arena, size.max(8), &mut rng);
        let scratch = arena.clone();
        let a_renamed = uniquify_into(&scratch, a, &mut arena);
        let ingested = [a, b, a_renamed];

        // Patterns: every subexpression of an ingested term (positives at
        // all depths) and of an unrelated term (mostly misses).
        let stranger = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let mut patterns = postorder(&arena, a);
        patterns.extend(postorder(&arena, stranger));

        for granularity in [
            Granularity::Roots,
            Granularity::Subexpressions { min_nodes: 1 },
            Granularity::Subexpressions { min_nodes: 4 },
        ] {
            check_contains_against_oracle::<u64>(&arena, &ingested, &patterns, granularity)?;
            check_contains_against_oracle::<u128>(&arena, &ingested, &patterns, granularity)?;
        }
    }

    /// Inserting one term at subexpression granularity partitions its
    /// subexpressions exactly like the ground-truth pairwise predicate,
    /// and occurrence counts mirror the class sizes.
    #[test]
    fn subexpression_classes_match_ground_truth(seed in any::<u64>(), size in 3usize..50) {
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let root = match size % 3 {
            0 => expr_gen::balanced(&mut arena, size, &mut rng),
            1 => expr_gen::unbalanced(&mut arena, size, &mut rng),
            _ => expr_gen::arithmetic(&mut arena, size.max(8), &mut rng),
        };

        let store: AlphaStore<u64> = AlphaStore::builder()
            .scheme(scheme())
            .subexpressions(1)
            .build();
        let outcome = store.insert(&arena, root);

        let truth = ground_truth_classes(&arena, root);
        prop_assert_eq!(store.num_classes(), truth.len());
        prop_assert_eq!(
            outcome.subs.indexed as usize + 1,
            arena.subtree_size(root)
        );
        prop_assert_eq!(outcome.subs.skipped_min_nodes, 0);

        // Each ground-truth class maps to one store class whose occurrence
        // count is exactly the class's node count.
        for class_nodes in &truth {
            let class = store
                .contains(&arena, class_nodes[0])
                .expect("every subexpression is indexed");
            prop_assert_eq!(store.occurrences(class), class_nodes.len() as u64);
        }
        prop_assert!(store.stats().is_exact());
    }

    /// Representatives: for any ingested term, the class representative is
    /// alpha-equivalent to the term and re-ingesting it merges back into
    /// the same class (the store is closed under its own canonical forms).
    #[test]
    fn representatives_reingest_into_their_class(seed in any::<u64>(), size in 3usize..60) {
        let store = AlphaStore::new(scheme());
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let root = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let outcome = store.insert(&arena, root);

        let mut dst = ExprArena::new();
        let rep = store.representative_into(outcome.class, &mut dst);
        prop_assert!(lambda_lang::alpha_eq(&arena, root, &dst, rep));

        let again = store.insert(&dst, rep);
        prop_assert_eq!(again.class, outcome.class);
        prop_assert!(!again.fresh);
    }
}
