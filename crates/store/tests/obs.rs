//! Integration tests for the store's observability surface (`obs`
//! feature, on by default): the exported report carries the full metric
//! catalog, the instrument counters reconcile exactly with
//! [`StoreStats`] under concurrent ingest, the WAL/recovery metrics
//! track the durable lifecycle, the runtime toggle stops the clock
//! without stopping the counters, and the enabled instrumentation stays
//! within a generous overhead bound.
#![cfg(feature = "obs")]

use alpha_store::{AlphaStore, StoreBuilder};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A corpus with deliberate alpha-duplicates (uniquified copies), so both
/// fresh-class and confirmed-merge paths run.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 5));
        let size = 4 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Every metric the acceptance list mandates, by exported name.
const MANDATED: &[&str] = &[
    "alpha_store_prepare_ns",
    "alpha_store_apply_ns",
    "alpha_store_wal_commit_ns",
    "alpha_store_wal_fsync_ns",
    "alpha_store_shard_lock_wait_ns",
    "alpha_store_canon_intern_hits",
    "alpha_store_canon_intern_misses",
    "alpha_store_frontier_walk_nodes",
    "alpha_store_wal_bytes_since_checkpoint",
];

#[test]
fn report_exposes_the_mandated_catalog_in_both_formats() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x0B5, 40);
    let store: AlphaStore<u64> = AlphaStore::builder().seed(1).shards(4).build();
    store.insert_batch(&arena, &roots);
    store.contains_batch(&arena, &roots[..8]);

    let report = store.obs_report();
    let json = report.to_json();
    let prom = report.to_prometheus();
    for name in MANDATED {
        assert!(json.contains(name), "JSON export is missing {name}");
        assert!(prom.contains(name), "Prometheus export is missing {name}");
    }
    // The unified extras ride along: StoreStats counters and canon-DAG
    // gauges come back through the same report.
    for name in [
        "alpha_store_terms_ingested",
        "alpha_store_merges_confirmed",
        "alpha_store_unconfirmed_merges",
        "alpha_store_canon_resident_nodes",
        "alpha_store_canon_logical_nodes",
    ] {
        assert!(json.contains(name), "JSON export is missing extra {name}");
        assert!(prom.contains(name), "Prometheus export is missing {name}");
    }
    // Prometheus summaries carry quantiles and count/sum per histogram.
    assert!(prom.contains("alpha_store_prepare_ns{quantile=\"0.99\"}"));
    assert!(prom.contains("alpha_store_prepare_ns_count"));
    // Spot-check values, not just presence.
    let stats = store.stats();
    assert_eq!(
        report.counter("alpha_store_terms_ingested"),
        Some(stats.terms_ingested)
    );
    assert_eq!(report.counter("alpha_store_unconfirmed_merges"), Some(0));
    let probe = report.histogram("alpha_store_probe_ns").unwrap();
    assert_eq!(
        probe.count, 8,
        "one probe_ns sample per contains_batch item"
    );
}

/// The reconciliation invariants a Roots-mode store must satisfy however
/// ingest is interleaved: every confirmed merge was counted by exactly
/// one confirmation path, every frontier confirmation logged its walk
/// length, and every ingested term was prepared (and timed) once.
fn check_roots_reconciliation(store: &AlphaStore<u64>) -> Result<(), TestCaseError> {
    let report = store.obs_report();
    let stats = store.stats();
    let by_ref = report.counter("alpha_store_merge_confirm_ref").unwrap();
    let by_walk = report.counter("alpha_store_merge_confirm_walk").unwrap();
    let by_cache = report.counter("alpha_store_merge_confirm_cached").unwrap();
    prop_assert_eq!(
        by_ref + by_walk + by_cache,
        stats.merges_confirmed,
        "every confirmed merge is attributed to exactly one confirmation path"
    );
    let walks = report.histogram("alpha_store_frontier_walk_nodes").unwrap();
    prop_assert_eq!(walks.count, by_walk);
    let prepared = report.histogram("alpha_store_prepare_ns").unwrap();
    prop_assert_eq!(prepared.count, stats.terms_ingested);
    let prepared_nodes = report.histogram("alpha_store_prepare_nodes").unwrap();
    prop_assert_eq!(prepared_nodes.count, stats.terms_ingested);
    prop_assert!(report.counter("alpha_store_hash_nodes").unwrap() >= prepared_nodes.sum);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent batched ingest from several threads: the obs counters
    /// reconcile exactly with `StoreStats`, whatever the interleaving.
    #[test]
    fn obs_counters_reconcile_with_stats_under_concurrent_ingest(
        seed in 0u64..1_000,
        count in 24usize..96,
        threads in 2usize..5,
    ) {
        let mut arena = ExprArena::new();
        let roots = corpus(&mut arena, seed, count);
        let store: AlphaStore<u64> = AlphaStore::builder().seed(9).shards(4).build();
        let chunk = roots.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in roots.chunks(chunk) {
                scope.spawn(|| store.insert_batch(&arena, part));
            }
        });
        prop_assert!(store.stats().is_exact());
        check_roots_reconciliation(&store)?;
    }
}

#[test]
fn subexpression_intern_misses_equal_resident_nodes() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xDA6, 60);
    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(3)
        .shards(4)
        .subexpressions(2)
        .build();
    store.insert_batch(&arena, &roots);
    let report = store.obs_report();
    // The canon table holds exactly one node per intern miss: the stripe
    // mutex is held across the check-insert, so no double-insert races.
    assert_eq!(
        report.counter("alpha_store_canon_intern_misses"),
        Some(store.canon_dag_stats().resident_nodes)
    );
    // Duplicates guarantee the dedup path actually ran.
    assert!(report.counter("alpha_store_canon_intern_hits").unwrap() > 0);
}

#[test]
fn durable_lifecycle_tracks_wal_and_recovery_metrics() {
    let dir = std::env::temp_dir().join(format!("obs-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = || {
        StoreBuilder::<u64>::new()
            .seed(11)
            .shards(4)
            .sync_on_commit(true)
    };
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x9A7, 30);

    {
        let store = builder().open_durable(&dir).unwrap();
        store.insert_batch(&arena, &roots);
        let report = store.obs_report();
        for name in [
            "alpha_store_wal_commit_ns",
            "alpha_store_wal_append_ns",
            "alpha_store_wal_fsync_ns",
        ] {
            let h = report.histogram(name).unwrap();
            assert!(
                h.count > 0,
                "{name} recorded nothing on a sync durable store"
            );
        }
        assert!(
            report
                .gauge("alpha_store_wal_bytes_since_checkpoint")
                .unwrap()
                > 0,
            "appended bytes must show in the gauge"
        );
        assert_eq!(
            report.gauge("alpha_store_wal_records"),
            Some(store.wal_records().unwrap())
        );

        // Checkpointing resets the byte gauge and times the snapshot.
        store.compact().unwrap();
        let report = store.obs_report();
        assert_eq!(
            report.gauge("alpha_store_wal_bytes_since_checkpoint"),
            Some(0)
        );
        assert!(
            report
                .histogram("alpha_store_snapshot_write_ns")
                .unwrap()
                .count
                > 0
        );
    }

    // Reopen: both recovery phases are timed exactly once per open.
    let reopened = builder().open_durable(&dir).unwrap();
    let report = reopened.obs_report();
    assert_eq!(
        report
            .histogram("alpha_store_recovery_snapshot_load_ns")
            .unwrap()
            .count,
        1
    );
    assert_eq!(
        report
            .histogram("alpha_store_recovery_replay_ns")
            .unwrap()
            .count,
        1
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn runtime_toggle_stops_timing_but_never_counters() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x70, 20);
    let store: AlphaStore<u64> = AlphaStore::builder().seed(5).shards(2).build();
    assert!(store.obs_enabled());
    store.set_obs_enabled(false);
    assert!(!store.obs_enabled());
    store.insert_batch(&arena, &roots);

    let report = store.obs_report();
    let stats = store.stats();
    // No clock reads while disabled: the latency histograms stay empty…
    assert_eq!(report.histogram("alpha_store_prepare_ns").unwrap().count, 0);
    assert_eq!(report.histogram("alpha_store_apply_ns").unwrap().count, 0);
    // …but work counters and length histograms never stop, so the
    // reconciliation invariants hold in either state.
    assert_eq!(
        report.histogram("alpha_store_prepare_nodes").unwrap().count,
        stats.terms_ingested
    );
    let by_walk = report.counter("alpha_store_merge_confirm_walk").unwrap();
    let by_ref = report.counter("alpha_store_merge_confirm_ref").unwrap();
    let by_cache = report.counter("alpha_store_merge_confirm_cached").unwrap();
    assert_eq!(by_ref + by_walk + by_cache, stats.merges_confirmed);

    // Re-enabling arms the clock again.
    store.set_obs_enabled(true);
    store.insert(&arena, roots[0]);
    assert!(
        store
            .obs_report()
            .histogram("alpha_store_prepare_ns")
            .unwrap()
            .count
            > 0
    );
}

#[test]
fn apply_chunks_emit_trace_events() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x7ACE, 24);
    let store: AlphaStore<u64> = AlphaStore::builder().seed(7).shards(2).build();
    store.insert_batch(&arena, &roots);
    let events = store.obs_recent_events();
    assert!(
        events.iter().any(|e| e.name == "store.apply_chunk"),
        "batched ingest must emit apply-chunk events, got {:?}",
        events.iter().map(|e| e.name).collect::<Vec<_>>()
    );
}

/// Instrumentation overhead stays modest: batched ingest with obs fully
/// enabled vs the runtime toggle off. Medians of repeated runs on fresh
/// stores; the bound is deliberately loose (CI machines are noisy) — the
/// tight 3% acceptance figure is checked by the benchmark, not here.
#[test]
fn enabled_instrumentation_overhead_is_bounded() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x0BEA, 400);
    let run = |enabled: bool| {
        let store: AlphaStore<u64> = AlphaStore::builder().seed(13).shards(8).build();
        store.set_obs_enabled(enabled);
        let t = std::time::Instant::now();
        store.insert_batch(&arena, &roots);
        t.elapsed().as_nanos() as u64
    };
    let median = |enabled: bool| {
        let mut times: Vec<u64> = (0..5).map(|_| run(enabled)).collect();
        times.sort_unstable();
        times[2]
    };
    // Warm-up, then measure.
    run(true);
    let (on, off) = (median(true), median(false));
    let ratio = on as f64 / off as f64;
    assert!(
        ratio < 1.5,
        "obs-enabled ingest took {ratio:.2}x the toggled-off time (on={on}ns off={off}ns)"
    );
}

/// The health state machine is fully observable: the
/// `alpha_store_health` gauge tracks every transition, the retry and
/// auto-checkpoint counters tick, and each transition emits a trace
/// event (`store.degraded` / `store.read_only` / `store.healed`).
#[test]
fn health_machine_is_observable() {
    use alpha_store::{FaultKind, FaultVfs, Health};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("alpha-store-obs-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x8EA17, 10);
    let fault = FaultVfs::new();
    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(7)
        .shards(4)
        .vfs(Arc::new(fault.clone()))
        .persist_retries(1)
        .persist_sleeper(Arc::new(|_| {}))
        .open_durable(&dir)
        .unwrap();

    store.insert_batch(&arena, &roots[..4]);
    assert_eq!(store.obs_report().gauge("alpha_store_health"), Some(0));

    // Transient fault: one retry, absorbed, healthy throughout the
    // caller's view (degrade + heal both emitted).
    fault.fail_at(fault.op_count(), FaultKind::Eio);
    store.insert(&arena, roots[4]);
    let report = store.obs_report();
    assert_eq!(report.gauge("alpha_store_health"), Some(0));
    assert_eq!(report.counter("alpha_store_wal_retries"), Some(1));

    // Persistent fault: retries exhaust, read-only (gauge = 2).
    fault.fail_always(FaultKind::Enospc);
    assert!(store.try_insert(&arena, roots[5]).is_err());
    assert_eq!(store.obs_report().gauge("alpha_store_health"), Some(2));
    assert!(matches!(store.health(), Health::ReadOnly(_)));

    // Manual checkpoint over a healed disk: gauge back to 0.
    fault.clear();
    store.checkpoint().unwrap();
    assert_eq!(store.obs_report().gauge("alpha_store_health"), Some(0));

    let events: Vec<&'static str> = store.obs_recent_events().iter().map(|e| e.name).collect();
    for needed in ["store.degraded", "store.read_only", "store.healed"] {
        assert!(
            events.contains(&needed),
            "missing trace event {needed} in {events:?}"
        );
    }
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Auto-checkpoints tick their counter.
#[test]
fn auto_checkpoints_are_counted() {
    let dir = std::env::temp_dir().join(format!("alpha-store-obs-ackpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xACC7, 12);
    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(7)
        .shards(4)
        .auto_checkpoint_records(4)
        .open_durable(&dir)
        .unwrap();
    for &r in &roots {
        store.insert(&arena, r);
    }
    let ticks = store
        .obs_report()
        .counter("alpha_store_auto_checkpoints")
        .unwrap();
    assert!(
        ticks >= 2,
        "12 inserts over a 4-record watermark: got {ticks}"
    );
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}
