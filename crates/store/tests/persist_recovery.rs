//! Crash-recovery property tests for the durable store.
//!
//! The contract under test: **whatever byte the crash lands on, recovery
//! rebuilds exactly the store a fresh build over the surviving prefix
//! would have built.** Each case ingests a random forest into a durable
//! store, "crashes" it by truncating the WAL at a random byte offset
//! (mid-record cuts included — that is the realistic torn-write shape),
//! reopens, and checks the recovered store against an in-memory oracle
//! fed the same terms:
//!
//! * same term count (the intact WAL prefix), same class partition over
//!   those terms, same canonical representatives with the same
//!   member/occurrence/node counts per class;
//! * identical [`StoreStats`] — recovery replays through the normal
//!   ingest path, so the counters reconcile exactly, and
//!   `unconfirmed_merges` stays 0 (every replayed merge re-confirmed);
//! * at u64 and u128 hash widths, at `Roots` and `Subexpressions`
//!   granularity, with and without a mid-stream snapshot (so cuts land
//!   both before and after what the snapshot absorbed).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_store::{AlphaStore, ClassId, Granularity, StoreStats};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alpha-store-recovery-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A varied corpus with alpha-duplicates: three generator families, seeds
/// drawn from a small pool, every other term alpha-renamed.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 5));
        let size = 4 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Everything observable about a store's classes, keyed by canonical text
/// (the class identity): member, occurrence and node counts. Two stores
/// with equal maps hold the same classes with the same bookkeeping.
fn class_census<H: HashWord>(store: &AlphaStore<H>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut census = BTreeMap::new();
    for class in store.classes() {
        let old = census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
        assert!(old.is_none(), "duplicate canonical form across classes");
    }
    census
}

/// The partition of `terms` into alpha-classes, as sorted index groups.
fn partition_of<H: HashWord>(
    store: &AlphaStore<H>,
    arena: &ExprArena,
    terms: &[NodeId],
) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<ClassId, Vec<usize>> = BTreeMap::new();
    for (i, &t) in terms.iter().enumerate() {
        let class = store
            .lookup(arena, t)
            .expect("every surviving term is findable");
        groups.entry(class).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

struct Recovered {
    terms_survived: usize,
    stats: StoreStats,
}

/// The generic crash/recover/compare scenario. Returns what survived so
/// callers can assert cut-position-dependent facts.
fn check_recovery<H: HashWord>(
    tag: &str,
    seed: u64,
    granularity: Granularity,
    cut_fraction: f64,
    snapshot_mid: bool,
) -> Recovered {
    let scheme: HashScheme<H> = HashScheme::new(0xD15C ^ seed);
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, seed, 36);
    let builder = || {
        AlphaStore::<H>::builder()
            .scheme(scheme)
            .shards(4)
            .granularity(granularity)
            // Small chunks: many group commits, so cuts land between and
            // inside groups alike.
            .chunk_entries(16)
    };

    let dir = TempDir::new(tag);
    let wal_path = dir.path().join("wal.bin");

    // Build the durable store; optionally snapshot mid-stream so the cut
    // can land in records the snapshot has already absorbed.
    {
        let store = builder().open_durable(dir.path()).expect("create durable");
        let (first, second) = roots.split_at(roots.len() / 2);
        store.insert_batch(&arena, first);
        if snapshot_mid {
            store.snapshot().expect("mid-stream snapshot");
        }
        store.insert_batch(&arena, second);
        assert_eq!(store.wal_records(), Some(roots.len() as u64));
    } // drop = crash without shutdown ceremony

    // The crash: truncate the WAL at a random byte offset within the
    // records region (a cut inside the header is unrecoverable corruption
    // by design, and tested separately).
    let header_len = {
        let probe = TempDir::new("header-probe");
        builder().open_durable(probe.path()).expect("probe store");
        std::fs::metadata(probe.path().join("wal.bin"))
            .expect("probe wal")
            .len()
    };
    let full_len = std::fs::metadata(&wal_path).expect("wal exists").len();
    assert!(full_len > header_len, "corpus must produce WAL records");
    let cut = header_len + ((full_len - header_len) as f64 * cut_fraction) as u64;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal for truncation")
        .set_len(cut)
        .expect("truncate wal");

    // Recover.
    let recovered = AlphaStore::<H>::open(dir.path()).expect("recovery succeeds");
    let survived = recovered.num_terms();
    assert!(survived <= roots.len());
    if snapshot_mid {
        assert!(
            survived >= roots.len() / 2,
            "records absorbed by the mid-stream snapshot cannot be lost to a WAL cut"
        );
    }
    // Recovery either checkpointed (fresh snapshot, empty WAL) or — when
    // the cut landed exactly on the boundary of what a mid-stream
    // snapshot had already absorbed — took the clean-reopen fast path and
    // kept the absorbed records in place. Both leave a consistent pair;
    // a WAL longer than the snapshot's absorption is impossible here.
    let wal_after = recovered.wal_records().expect("recovered store is durable");
    assert!(
        wal_after == 0 || (snapshot_mid && wal_after as usize == survived),
        "unexpected WAL length {wal_after} after recovery of {survived} terms"
    );

    // Oracle: a fresh in-memory build over exactly the surviving prefix.
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots[..survived]);

    assert_eq!(recovered.num_classes(), oracle.num_classes());
    assert_eq!(class_census(&recovered), class_census(&oracle));
    assert_eq!(
        partition_of(&recovered, &arena, &roots[..survived]),
        partition_of(&oracle, &arena, &roots[..survived]),
    );
    let stats = recovered.stats();
    let truth = oracle.stats();
    // The split between root merges and subterm merges depends on batch
    // chunk boundaries (a root merging into a class a same-chunk subterm
    // just created counts as a root merge; across chunks too, but the
    // boundary decides which insert got there first). Replay cannot know
    // the original group boundaries, so assert the boundary-independent
    // stats exactly and the merge *sum* — which final-state accounting
    // fixes — instead of the split. See `alpha_store::stats` docs.
    assert_eq!(
        StoreStats {
            merges_confirmed: 0,
            subterm_merges_confirmed: 0,
            ..stats
        },
        StoreStats {
            merges_confirmed: 0,
            subterm_merges_confirmed: 0,
            ..truth
        },
        "boundary-independent stats must reconcile after replay"
    );
    assert_eq!(
        stats.merges_confirmed + stats.subterm_merges_confirmed,
        truth.merges_confirmed + truth.subterm_merges_confirmed,
        "total confirmed merges must reconcile after replay"
    );
    if granularity == Granularity::Roots {
        // No subterms, so the split cannot shift: full equality.
        assert_eq!(stats, truth, "roots-mode stats must reconcile exactly");
    }
    assert!(stats.is_exact(), "0 unconfirmed merges after recovery");
    assert_eq!(stats.terms_ingested as usize, survived);

    // And the recovered store keeps working: reinserting an already-known
    // term merges instead of forking a class.
    if survived > 0 {
        let outcome = recovered.insert(&arena, roots[0]);
        assert!(!outcome.fresh);
    }
    Recovered {
        terms_survived: survived,
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn roots_recovery_matches_oracle(
        seed in any::<u64>(),
        cut_ppm in 0u64..1_000_000,
        snapshot_mid in any::<bool>(),
    ) {
        let cut_fraction = cut_ppm as f64 / 1e6;
        let r64 = check_recovery::<u64>("roots64", seed, Granularity::Roots, cut_fraction, snapshot_mid);
        let r128 = check_recovery::<u128>("roots128", seed, Granularity::Roots, cut_fraction, snapshot_mid);
        // Widths agree on what a record is, so the same cut fraction
        // cannot diverge wildly; both must at least agree on exactness.
        prop_assert!(r64.stats.is_exact() && r128.stats.is_exact());
    }

    #[test]
    fn subexpression_recovery_matches_oracle(
        seed in any::<u64>(),
        cut_ppm in 0u64..1_000_000,
        snapshot_mid in any::<bool>(),
        floor_wide in any::<bool>(),
    ) {
        let cut_fraction = cut_ppm as f64 / 1e6;
        let min_nodes = if floor_wide { 4 } else { 1 };
        let g = Granularity::Subexpressions { min_nodes };
        let r64 = check_recovery::<u64>("subs64", seed, g, cut_fraction, snapshot_mid);
        let r128 = check_recovery::<u128>("subs128", seed, g, cut_fraction, snapshot_mid);
        prop_assert!(r64.stats.is_exact() && r128.stats.is_exact());
        // The subexpression index must actually have been exercised.
        if r64.terms_survived > 0 {
            prop_assert!(r64.stats.subterms_indexed > 0);
        }
        if r128.terms_survived > 0 {
            prop_assert!(r128.stats.subterms_indexed > 0);
        }
    }
}

#[test]
fn snapshot_roundtrip_preserves_handles_and_stats() {
    // The acceptance-criteria shape minus the crash: snapshot → drop →
    // open must preserve the partition, the canonical representatives,
    // the stats AND the issued handles (snapshot loads are verbatim, no
    // replay renumbering).
    let dir = TempDir::new("roundtrip");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xE0E0, 60);
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(0x5EED)
            .shards(8)
            .subexpressions(3)
    };

    let (outcomes, stats_before) = {
        let store = builder().open_durable(dir.path()).expect("create");
        let outcomes = store.insert_batch(&arena, &roots);
        store.snapshot().expect("snapshot");
        (outcomes, store.stats())
    };

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(reopened.stats(), stats_before);
    assert_eq!(reopened.num_terms(), roots.len());
    for (outcome, &root) in outcomes.iter().zip(&roots) {
        assert_eq!(reopened.class_of(outcome.term), outcome.class);
        assert_eq!(reopened.lookup(&arena, root), Some(outcome.class));
        let subs: Vec<ClassId> = reopened.subterm_classes(outcome.term).collect();
        assert!(subs.contains(&outcome.class));
    }
}

#[test]
fn compact_then_recover_replays_nothing_twice() {
    let dir = TempDir::new("compact");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xC0C0, 40);
    let builder = || AlphaStore::<u64>::builder().seed(3).shards(4);

    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots[..20]);
        store.compact().expect("compact");
        assert_eq!(store.wal_records(), Some(0));
        store.insert_batch(&arena, &roots[20..]);
        assert_eq!(store.wal_records(), Some(20));
    }

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(reopened.num_terms(), roots.len());
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(reopened.stats(), oracle.stats());
    assert_eq!(class_census(&reopened), class_census(&oracle));
}

#[test]
fn stale_epoch_wal_is_discarded_not_replayed() {
    // Simulate a crash between compaction's snapshot rename and WAL
    // reset: compact, then restore the pre-compaction WAL file. Its
    // records are all inside the snapshot; recovery must not double-count.
    let dir = TempDir::new("stale-epoch");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xABAB, 30);
    let builder = || AlphaStore::<u64>::builder().seed(9).shards(4);

    let wal_path = dir.path().join("wal.bin");
    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots);
        let stale_wal = std::fs::read(&wal_path).expect("read wal");
        store.compact().expect("compact");
        // Crash simulation: the old WAL comes back from the dead.
        std::fs::write(&wal_path, stale_wal).expect("restore stale wal");
    }

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(reopened.num_terms(), roots.len(), "no record lost");
    assert_eq!(reopened.stats(), oracle.stats(), "no record replayed twice");
}

/// `Result::unwrap_err` needs `Debug` on the success type; the store has
/// none, so unwrap the error by hand.
fn expect_err<H: HashWord>(
    result: Result<AlphaStore<H>, alpha_store::PersistError>,
) -> alpha_store::PersistError {
    match result {
        Ok(_) => panic!("expected opening to fail"),
        Err(e) => e,
    }
}

#[test]
fn config_mismatches_are_rejected() {
    let dir = TempDir::new("mismatch");
    let mut arena = ExprArena::new();
    let root = corpus(&mut arena, 1, 1)[0];
    AlphaStore::<u64>::builder()
        .seed(7)
        .shards(4)
        .open_durable(dir.path())
        .expect("create")
        .insert(&arena, root);

    use alpha_store::PersistError;
    // Wrong seed.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(8)
            .shards(4)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong shard count.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(7)
            .shards(16)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong granularity.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(7)
            .shards(4)
            .subexpressions(2)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong hash width.
    let err = expect_err(AlphaStore::<u128>::open(dir.path()));
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // The right configuration still opens.
    let store = AlphaStore::<u64>::builder()
        .seed(7)
        .shards(4)
        .open_durable(dir.path())
        .expect("matching config reopens");
    assert_eq!(store.num_terms(), 1);
}

#[test]
fn clean_reopen_skips_the_checkpoint_and_keeps_appending() {
    // A store whose snapshot already absorbed every WAL record reopens
    // without rewriting the snapshot (no O(store) churn on a no-op
    // reopen) and keeps appending to the same WAL — and a further reopen
    // replays exactly the records appended after the snapshot.
    let dir = TempDir::new("clean-reopen");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xCAFE, 30);
    let builder = || AlphaStore::<u64>::builder().seed(13).shards(4);

    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots[..10]);
        store.snapshot().expect("snapshot");
    }
    let snap_path = dir.path().join("snapshot.bin");
    let snap_before = std::fs::read(&snap_path).expect("snapshot bytes");

    {
        let reopened = builder().open_durable(dir.path()).expect("clean reopen");
        assert_eq!(reopened.num_terms(), 10);
        assert_eq!(
            reopened.wal_records(),
            Some(10),
            "clean reopen keeps the absorbed WAL in place"
        );
        assert_eq!(
            std::fs::read(&snap_path).expect("snapshot bytes"),
            snap_before,
            "clean reopen must not rewrite the snapshot"
        );
        reopened.insert_batch(&arena, &roots[10..]);
        assert_eq!(reopened.wal_records(), Some(30));
    }

    // The next open replays only the 20 appended records on top of the
    // 10-term snapshot, matching a fresh build of all 30.
    let recovered = builder().open_durable(dir.path()).expect("recover");
    assert_eq!(recovered.num_terms(), roots.len());
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(recovered.stats(), oracle.stats());
    assert_eq!(class_census(&recovered), class_census(&oracle));
}

#[test]
fn undecodable_wal_header_with_intact_snapshot_recovers_to_the_snapshot() {
    // A disk-full or crash during WAL reset can leave wal.bin empty or
    // with a garbage header. With an intact snapshot, recovery must fall
    // back to the snapshot (the authoritative committed state) instead of
    // failing forever.
    let dir = TempDir::new("wal-header");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xFEFE, 20);
    let builder = || AlphaStore::<u64>::builder().seed(5).shards(4);
    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots);
        store.snapshot().expect("snapshot");
    }
    let wal_path = dir.path().join("wal.bin");
    for bad_wal in [&b""[..], &b"garbage, not a WAL header at all"[..]] {
        std::fs::write(&wal_path, bad_wal).expect("corrupt the wal");
        let reopened = builder()
            .open_durable(dir.path())
            .expect("snapshot-backed recovery survives a destroyed WAL header");
        assert_eq!(reopened.num_terms(), roots.len());
        assert!(reopened.stats().is_exact());
    }
    // Without a snapshot, the same corruption is rightly fatal.
    std::fs::remove_file(dir.path().join("snapshot.bin")).expect("drop snapshot");
    std::fs::write(&wal_path, b"garbage").expect("corrupt the wal");
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Corrupt { .. }),
        "{err}"
    );
}

#[test]
fn second_opener_is_locked_out_until_the_first_drops() {
    let dir = TempDir::new("locked");
    let mut arena = ExprArena::new();
    let root = corpus(&mut arena, 2, 1)[0];
    let builder = || AlphaStore::<u64>::builder().seed(11).shards(4);

    let first = builder().open_durable(dir.path()).expect("create");
    first.insert(&arena, root);
    // While `first` lives, any second open — recovery or create — fails
    // fast instead of truncating the WAL `first` is appending to.
    let err = expect_err(builder().open_durable(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Locked { .. }),
        "{err}"
    );
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Locked { .. }),
        "{err}"
    );

    drop(first);
    let second = builder().open_durable(dir.path()).expect("lock released");
    assert_eq!(second.num_terms(), 1);
}

#[test]
fn opening_nothing_is_not_found() {
    let dir = TempDir::new("empty");
    std::fs::create_dir_all(dir.path()).unwrap();
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(matches!(err, alpha_store::PersistError::Io(ref e)
        if e.kind() == std::io::ErrorKind::NotFound));
}
