//! Crash-recovery property tests for the durable store.
//!
//! The contract under test: **whatever byte the crash lands on, recovery
//! rebuilds exactly the store a fresh build over the surviving prefix
//! would have built.** Each case ingests a random forest into a durable
//! store, "crashes" it by truncating the WAL at a random byte offset
//! (mid-record cuts included — that is the realistic torn-write shape),
//! reopens, and checks the recovered store against an in-memory oracle
//! fed the same terms:
//!
//! * same term count (the intact WAL prefix), same class partition over
//!   those terms, same canonical representatives with the same
//!   member/occurrence/node counts per class;
//! * identical [`StoreStats`] — recovery replays through the normal
//!   ingest path, so the counters reconcile exactly, and
//!   `unconfirmed_merges` stays 0 (every replayed merge re-confirmed);
//! * at u64 and u128 hash widths, at `Roots` and `Subexpressions`
//!   granularity, with and without a mid-stream snapshot (so cuts land
//!   both before and after what the snapshot absorbed).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_store::{AlphaStore, ClassId, Granularity, StoreStats};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alpha-store-recovery-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A varied corpus with alpha-duplicates: three generator families, seeds
/// drawn from a small pool, every other term alpha-renamed.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 5));
        let size = 4 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Everything observable about a store's classes, keyed by canonical text
/// (the class identity): member, occurrence and node counts. Two stores
/// with equal maps hold the same classes with the same bookkeeping.
fn class_census<H: HashWord>(store: &AlphaStore<H>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut census = BTreeMap::new();
    for class in store.classes() {
        let old = census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
        assert!(old.is_none(), "duplicate canonical form across classes");
    }
    census
}

/// The partition of `terms` into alpha-classes, as sorted index groups.
fn partition_of<H: HashWord>(
    store: &AlphaStore<H>,
    arena: &ExprArena,
    terms: &[NodeId],
) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<ClassId, Vec<usize>> = BTreeMap::new();
    for (i, &t) in terms.iter().enumerate() {
        let class = store
            .lookup(arena, t)
            .expect("every surviving term is findable");
        groups.entry(class).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

struct Recovered {
    terms_survived: usize,
    stats: StoreStats,
}

/// The generic crash/recover/compare scenario. Returns what survived so
/// callers can assert cut-position-dependent facts.
fn check_recovery<H: HashWord>(
    tag: &str,
    seed: u64,
    granularity: Granularity,
    cut_fraction: f64,
    snapshot_mid: bool,
) -> Recovered {
    let scheme: HashScheme<H> = HashScheme::new(0xD15C ^ seed);
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, seed, 36);
    let builder = || {
        AlphaStore::<H>::builder()
            .scheme(scheme)
            .shards(4)
            .granularity(granularity)
            // Small chunks: many group commits, so cuts land between and
            // inside groups alike.
            .chunk_entries(16)
    };

    let dir = TempDir::new(tag);
    let wal_path = dir.path().join("wal.bin");

    // Build the durable store; optionally snapshot mid-stream so the cut
    // can land in records the snapshot has already absorbed.
    {
        let store = builder().open_durable(dir.path()).expect("create durable");
        let (first, second) = roots.split_at(roots.len() / 2);
        store.insert_batch(&arena, first);
        if snapshot_mid {
            store.snapshot().expect("mid-stream snapshot");
        }
        store.insert_batch(&arena, second);
        assert_eq!(store.wal_records(), Some(roots.len() as u64));
    } // drop = crash without shutdown ceremony

    // The crash: truncate the WAL at a random byte offset within the
    // records region (a cut inside the header is unrecoverable corruption
    // by design, and tested separately).
    let header_len = {
        let probe = TempDir::new("header-probe");
        builder().open_durable(probe.path()).expect("probe store");
        std::fs::metadata(probe.path().join("wal.bin"))
            .expect("probe wal")
            .len()
    };
    let full_len = std::fs::metadata(&wal_path).expect("wal exists").len();
    assert!(full_len > header_len, "corpus must produce WAL records");
    let cut = header_len + ((full_len - header_len) as f64 * cut_fraction) as u64;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal for truncation")
        .set_len(cut)
        .expect("truncate wal");

    // Recover.
    let recovered = AlphaStore::<H>::open(dir.path()).expect("recovery succeeds");
    let survived = recovered.num_terms();
    assert!(survived <= roots.len());
    if snapshot_mid {
        assert!(
            survived >= roots.len() / 2,
            "records absorbed by the mid-stream snapshot cannot be lost to a WAL cut"
        );
    }
    // Recovery either checkpointed (fresh snapshot, empty WAL) or — when
    // the cut landed exactly on the boundary of what a mid-stream
    // snapshot had already absorbed — took the clean-reopen fast path and
    // kept the absorbed records in place. Both leave a consistent pair;
    // a WAL longer than the snapshot's absorption is impossible here.
    let wal_after = recovered.wal_records().expect("recovered store is durable");
    assert!(
        wal_after == 0 || (snapshot_mid && wal_after as usize == survived),
        "unexpected WAL length {wal_after} after recovery of {survived} terms"
    );

    // Oracle: a fresh in-memory build over exactly the surviving prefix,
    // issued with the SAME batch-call pattern as the original store (two
    // insert_batch calls split at the halfway mark). WAL group-commit
    // boundary markers make replay reproduce the original ingest groups,
    // so the oracle must reproduce them too — and then even the
    // chunk-boundary-dependent split between `merges_confirmed` and
    // `subterm_merges_confirmed` reconciles EXACTLY, not just as a sum.
    let oracle = builder().build();
    let half = roots.len() / 2;
    oracle.insert_batch(&arena, &roots[..survived.min(half)]);
    if survived > half {
        oracle.insert_batch(&arena, &roots[half..survived]);
    }

    assert_eq!(recovered.num_classes(), oracle.num_classes());
    assert_eq!(class_census(&recovered), class_census(&oracle));
    assert_eq!(
        partition_of(&recovered, &arena, &roots[..survived]),
        partition_of(&oracle, &arena, &roots[..survived]),
    );
    let stats = recovered.stats();
    let truth = oracle.stats();
    assert_eq!(
        stats, truth,
        "group-marked replay must reconcile the full stats, split included"
    );
    assert!(stats.is_exact(), "0 unconfirmed merges after recovery");
    assert_eq!(stats.terms_ingested as usize, survived);

    // And the recovered store keeps working: reinserting an already-known
    // term merges instead of forking a class.
    if survived > 0 {
        let outcome = recovered.insert(&arena, roots[0]);
        assert!(!outcome.fresh);
    }
    Recovered {
        terms_survived: survived,
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn roots_recovery_matches_oracle(
        seed in any::<u64>(),
        cut_ppm in 0u64..1_000_000,
        snapshot_mid in any::<bool>(),
    ) {
        let cut_fraction = cut_ppm as f64 / 1e6;
        let r64 = check_recovery::<u64>("roots64", seed, Granularity::Roots, cut_fraction, snapshot_mid);
        let r128 = check_recovery::<u128>("roots128", seed, Granularity::Roots, cut_fraction, snapshot_mid);
        // Widths agree on what a record is, so the same cut fraction
        // cannot diverge wildly; both must at least agree on exactness.
        prop_assert!(r64.stats.is_exact() && r128.stats.is_exact());
    }

    #[test]
    fn subexpression_recovery_matches_oracle(
        seed in any::<u64>(),
        cut_ppm in 0u64..1_000_000,
        snapshot_mid in any::<bool>(),
        floor_wide in any::<bool>(),
    ) {
        let cut_fraction = cut_ppm as f64 / 1e6;
        let min_nodes = if floor_wide { 4 } else { 1 };
        let g = Granularity::Subexpressions { min_nodes };
        let r64 = check_recovery::<u64>("subs64", seed, g, cut_fraction, snapshot_mid);
        let r128 = check_recovery::<u128>("subs128", seed, g, cut_fraction, snapshot_mid);
        prop_assert!(r64.stats.is_exact() && r128.stats.is_exact());
        // The subexpression index must actually have been exercised.
        if r64.terms_survived > 0 {
            prop_assert!(r64.stats.subterms_indexed > 0);
        }
        if r128.terms_survived > 0 {
            prop_assert!(r128.stats.subterms_indexed > 0);
        }
    }
}

#[test]
fn snapshot_roundtrip_preserves_handles_and_stats() {
    // The acceptance-criteria shape minus the crash: snapshot → drop →
    // open must preserve the partition, the canonical representatives,
    // the stats AND the issued handles (snapshot loads are verbatim, no
    // replay renumbering).
    let dir = TempDir::new("roundtrip");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xE0E0, 60);
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(0x5EED)
            .shards(8)
            .subexpressions(3)
    };

    let (outcomes, stats_before) = {
        let store = builder().open_durable(dir.path()).expect("create");
        let outcomes = store.insert_batch(&arena, &roots);
        store.snapshot().expect("snapshot");
        (outcomes, store.stats())
    };

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(reopened.stats(), stats_before);
    assert_eq!(reopened.num_terms(), roots.len());
    for (outcome, &root) in outcomes.iter().zip(&roots) {
        assert_eq!(reopened.class_of(outcome.term), outcome.class);
        assert_eq!(reopened.lookup(&arena, root), Some(outcome.class));
        let subs: Vec<ClassId> = reopened.subterm_classes(outcome.term).collect();
        assert!(subs.contains(&outcome.class));
    }
}

#[test]
fn compact_then_recover_replays_nothing_twice() {
    let dir = TempDir::new("compact");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xC0C0, 40);
    let builder = || AlphaStore::<u64>::builder().seed(3).shards(4);

    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots[..20]);
        store.compact().expect("compact");
        assert_eq!(store.wal_records(), Some(0));
        store.insert_batch(&arena, &roots[20..]);
        assert_eq!(store.wal_records(), Some(20));
    }

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(reopened.num_terms(), roots.len());
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(reopened.stats(), oracle.stats());
    assert_eq!(class_census(&reopened), class_census(&oracle));
}

#[test]
fn stale_epoch_wal_is_discarded_not_replayed() {
    // Simulate a crash between compaction's snapshot rename and WAL
    // reset: compact, then restore the pre-compaction WAL file. Its
    // records are all inside the snapshot; recovery must not double-count.
    let dir = TempDir::new("stale-epoch");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xABAB, 30);
    let builder = || AlphaStore::<u64>::builder().seed(9).shards(4);

    let wal_path = dir.path().join("wal.bin");
    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots);
        let stale_wal = std::fs::read(&wal_path).expect("read wal");
        store.compact().expect("compact");
        // Crash simulation: the old WAL comes back from the dead.
        std::fs::write(&wal_path, stale_wal).expect("restore stale wal");
    }

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(reopened.num_terms(), roots.len(), "no record lost");
    assert_eq!(reopened.stats(), oracle.stats(), "no record replayed twice");
}

/// `Result::unwrap_err` needs `Debug` on the success type; the store has
/// none, so unwrap the error by hand.
fn expect_err<H: HashWord>(
    result: Result<AlphaStore<H>, alpha_store::PersistError>,
) -> alpha_store::PersistError {
    match result {
        Ok(_) => panic!("expected opening to fail"),
        Err(e) => e,
    }
}

#[test]
fn config_mismatches_are_rejected() {
    let dir = TempDir::new("mismatch");
    let mut arena = ExprArena::new();
    let root = corpus(&mut arena, 1, 1)[0];
    AlphaStore::<u64>::builder()
        .seed(7)
        .shards(4)
        .open_durable(dir.path())
        .expect("create")
        .insert(&arena, root);

    use alpha_store::PersistError;
    // Wrong seed.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(8)
            .shards(4)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong shard count.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(7)
            .shards(16)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong granularity.
    let err = expect_err(
        AlphaStore::<u64>::builder()
            .seed(7)
            .shards(4)
            .subexpressions(2)
            .open_durable(dir.path()),
    );
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // Wrong hash width.
    let err = expect_err(AlphaStore::<u128>::open(dir.path()));
    assert!(matches!(err, PersistError::Mismatch { .. }), "{err}");
    // The right configuration still opens.
    let store = AlphaStore::<u64>::builder()
        .seed(7)
        .shards(4)
        .open_durable(dir.path())
        .expect("matching config reopens");
    assert_eq!(store.num_terms(), 1);
}

#[test]
fn clean_reopen_skips_the_checkpoint_and_keeps_appending() {
    // A store whose snapshot already absorbed every WAL record reopens
    // without rewriting the snapshot (no O(store) churn on a no-op
    // reopen) and keeps appending to the same WAL — and a further reopen
    // replays exactly the records appended after the snapshot.
    let dir = TempDir::new("clean-reopen");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xCAFE, 30);
    let builder = || AlphaStore::<u64>::builder().seed(13).shards(4);

    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots[..10]);
        store.snapshot().expect("snapshot");
    }
    let snap_path = dir.path().join("snapshot.bin");
    let snap_before = std::fs::read(&snap_path).expect("snapshot bytes");

    {
        let reopened = builder().open_durable(dir.path()).expect("clean reopen");
        assert_eq!(reopened.num_terms(), 10);
        assert_eq!(
            reopened.wal_records(),
            Some(10),
            "clean reopen keeps the absorbed WAL in place"
        );
        assert_eq!(
            std::fs::read(&snap_path).expect("snapshot bytes"),
            snap_before,
            "clean reopen must not rewrite the snapshot"
        );
        reopened.insert_batch(&arena, &roots[10..]);
        assert_eq!(reopened.wal_records(), Some(30));
    }

    // The next open replays only the 20 appended records on top of the
    // 10-term snapshot, matching a fresh build of all 30.
    let recovered = builder().open_durable(dir.path()).expect("recover");
    assert_eq!(recovered.num_terms(), roots.len());
    let oracle = builder().build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(recovered.stats(), oracle.stats());
    assert_eq!(class_census(&recovered), class_census(&oracle));
}

#[test]
fn undecodable_wal_header_with_intact_snapshot_recovers_to_the_snapshot() {
    // A disk-full or crash during WAL reset can leave wal.bin empty or
    // with a garbage header. With an intact snapshot, recovery must fall
    // back to the snapshot (the authoritative committed state) instead of
    // failing forever.
    let dir = TempDir::new("wal-header");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xFEFE, 20);
    let builder = || AlphaStore::<u64>::builder().seed(5).shards(4);
    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert_batch(&arena, &roots);
        store.snapshot().expect("snapshot");
    }
    let wal_path = dir.path().join("wal.bin");
    for bad_wal in [&b""[..], &b"garbage, not a WAL header at all"[..]] {
        std::fs::write(&wal_path, bad_wal).expect("corrupt the wal");
        let reopened = builder()
            .open_durable(dir.path())
            .expect("snapshot-backed recovery survives a destroyed WAL header");
        assert_eq!(reopened.num_terms(), roots.len());
        assert!(reopened.stats().is_exact());
    }
    // Without a snapshot, the same corruption is rightly fatal.
    std::fs::remove_file(dir.path().join("snapshot.bin")).expect("drop snapshot");
    std::fs::write(&wal_path, b"garbage").expect("corrupt the wal");
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Corrupt { .. }),
        "{err}"
    );
}

#[test]
fn merge_counter_split_survives_reopen_exactly() {
    // ROADMAP item e: WAL group-commit boundary markers let replay
    // reproduce the root-vs-subterm merge-counter *split*, not just its
    // sum — even across an irregular mix of singles and batches.
    let dir = TempDir::new("split");
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x5717, 30);
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(21)
            .shards(4)
            .subexpressions(2)
            .chunk_entries(8)
    };
    let stats_before = {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert(&arena, roots[0]);
        store.insert_batch(&arena, &roots[1..7]);
        store.insert(&arena, roots[7]);
        store.insert_batch(&arena, &roots[7..]); // roots[7] again: a root merge
        store.stats()
    };
    assert!(stats_before.merges_confirmed > 0, "{stats_before}");
    assert!(stats_before.subterm_merges_confirmed > 0, "{stats_before}");

    let reopened = builder().open_durable(dir.path()).expect("reopen");
    assert_eq!(
        reopened.stats(),
        stats_before,
        "replay must reproduce the merge-counter split exactly"
    );
}

/// Rewrites every WAL frame's CRC to match its (possibly tampered)
/// payload, so the tampering is invisible to the frame check — the
/// "consistent corruption" shape only paranoid replay can catch.
fn refresh_wal_crcs(wal_path: &Path) {
    const WAL_HEADER_LEN: usize = 43;
    let mut bytes = std::fs::read(wal_path).expect("read wal");
    let mut offset = WAL_HEADER_LEN;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let payload_start = offset + 8;
        let payload_end = payload_start + len;
        if payload_end > bytes.len() {
            break;
        }
        let crc = alpha_store::persist::format::crc32(&bytes[payload_start..payload_end]);
        bytes[offset + 4..offset + 8].copy_from_slice(&crc.to_le_bytes());
        offset = payload_end;
    }
    std::fs::write(wal_path, &bytes).expect("write wal");
}

#[test]
fn verify_on_replay_catches_crc_consistent_canon_corruption() {
    // ROADMAP item d: flip a byte inside a record's canonical payload and
    // re-CRC the frame. The default open replays it without complaint
    // (CRC passes, and db_eq only compares canon against canon — the
    // hash/canon pair is never cross-checked), silently storing a class
    // whose content address belongs to a different term. Paranoid mode
    // re-hashes the payload and refuses.
    let dir = TempDir::new("paranoid");
    let mut arena = ExprArena::new();
    let t1 = lambda_lang::parse(&mut arena, "qq + 1").unwrap();
    let t2 = lambda_lang::parse(&mut arena, r"\x. x * qq").unwrap();
    let builder = || AlphaStore::<u64>::builder().seed(17).shards(2);
    {
        let store = builder().open_durable(dir.path()).expect("create");
        store.insert(&arena, t1);
        store.insert(&arena, t2);
    }

    // Tamper: the free variable "qq" becomes "qz" inside the WAL records
    // (string payloads: [len=2 u32]['q']['q']), then re-frame.
    let wal_path = dir.path().join("wal.bin");
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    let needle = [2u8, 0, 0, 0, b'q', b'q'];
    let mut tampered = 0;
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if bytes[i..i + needle.len()] == needle {
            bytes[i + 5] = b'z';
            tampered += 1;
        }
        i += 1;
    }
    assert!(tampered > 0, "the name must appear in the WAL");
    std::fs::write(&wal_path, &bytes).expect("write wal");
    refresh_wal_crcs(&wal_path);

    // Paranoid open: caught. (Runs first — it fails before any
    // checkpoint, leaving the directory untouched for the second open.)
    let err = expect_err(builder().verify_on_replay(true).open_durable(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Corrupt { .. }),
        "verify_on_replay must reject the tampered record: {err}"
    );

    // Default open: replays "cleanly" — CRC and db_eq alone cannot see
    // the damage; the store now answers for the tampered term. This is
    // exactly the gap paranoid mode closes.
    let store = builder().open_durable(dir.path()).expect("default open");
    assert_eq!(store.num_terms(), 2);
    let tampered_term = lambda_lang::parse(&mut arena, "qz + 1").unwrap();
    assert_eq!(
        store.lookup(&arena, tampered_term),
        None,
        "the tampered canon is filed under the ORIGINAL term's address, \
         so not even the tampered term finds it"
    );
}

mod v1_migration {
    //! Hand-encodes a format-v1 store directory (the pre-canon-DAG
    //! layout: standalone canonical tree per class and per WAL entry, no
    //! commit markers) and opens it under v2.

    use super::*;
    use alpha_store::persist::format::crc32;
    use lambda_lang::debruijn::{to_debruijn, DbArena, DbId, DbNode};
    use lambda_lang::parse;

    fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fn put_hash(out: &mut Vec<u8>, h: u64) {
        let (lo, hi) = h.to_lanes();
        put_u64(out, lo);
        put_u64(out, hi);
    }

    /// v1 `canon`: name table, nodes, root id.
    fn put_canon_v1(out: &mut Vec<u8>, canon: &DbArena, root: DbId) {
        put_u32(out, canon.names_len() as u32);
        for name in canon.names() {
            put_u32(out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
        }
        put_u32(out, canon.len() as u32);
        for node in canon.nodes() {
            match node {
                DbNode::BVar(i) => {
                    out.push(0);
                    put_u32(out, i);
                }
                DbNode::FVar(sym) => {
                    out.push(1);
                    put_u32(out, sym.index());
                }
                DbNode::Lam(b) => {
                    out.push(2);
                    put_u32(out, b.index() as u32);
                }
                DbNode::App(f, a) => {
                    out.push(3);
                    put_u32(out, f.index() as u32);
                    put_u32(out, a.index() as u32);
                }
                DbNode::Let(r, b) => {
                    out.push(4);
                    put_u32(out, r.index() as u32);
                    put_u32(out, b.index() as u32);
                }
                DbNode::Lit(lit) => {
                    out.push(5);
                    let (kind, payload) = match lit {
                        lambda_lang::Literal::I64(v) => (1u8, v as u64),
                        lambda_lang::Literal::F64Bits(bits) => (2, bits),
                        lambda_lang::Literal::Bool(b) => (3, b as u64),
                    };
                    out.push(kind);
                    put_u64(out, payload);
                }
            }
        }
        put_u32(out, root.index() as u32);
    }

    /// A v1 snapshot whose `wal_records_applied` covers the WAL exactly —
    /// the shape a cleanly-closed PR-4 store leaves behind.
    fn write_clean_v1_pair(dir: &Path, arena: &ExprArena, terms: &[lambda_lang::NodeId]) {
        let scheme = alpha_hash::combine::HashScheme::<u64>::new(7);
        let mut snap = Vec::new();
        snap.extend_from_slice(b"AHSNAP01");
        put_u16(&mut snap, 1);
        put_u32(&mut snap, 64);
        put_u64(&mut snap, scheme.seed());
        put_u32(&mut snap, 1);
        snap.push(0); // Roots
        put_u64(&mut snap, 0);
        put_u64(&mut snap, 1); // wal_epoch
        put_u64(&mut snap, 0); // wal_records_applied: the WAL is empty
        for v in [terms.len() as u64, terms.len() as u64, 0, 0, 0, 0, 0, 0] {
            put_u64(&mut snap, v);
        }
        put_u32(&mut snap, terms.len() as u32);
        for &term in terms {
            put_hash(
                &mut snap,
                alpha_hash::hashed::hash_expr(arena, term, &scheme),
            );
            put_u64(&mut snap, 1);
            put_u64(&mut snap, 1);
            let (canon, root) = to_debruijn(arena, term);
            put_canon_v1(&mut snap, &canon, root);
        }
        put_u32(&mut snap, terms.len() as u32);
        for i in 0..terms.len() as u32 {
            put_u32(&mut snap, i);
        }
        for _ in terms {
            put_u32(&mut snap, 0);
        }
        let crc = crc32(&snap[8..]);
        put_u32(&mut snap, crc);
        std::fs::write(dir.join("snapshot.bin"), &snap).unwrap();

        // Empty v1 WAL: header only, same epoch.
        let mut wal = Vec::new();
        wal.extend_from_slice(b"AHWAL001");
        put_u16(&mut wal, 1);
        put_u32(&mut wal, 64);
        put_u64(&mut wal, scheme.seed());
        put_u32(&mut wal, 1);
        wal.push(0);
        put_u64(&mut wal, 0);
        put_u64(&mut wal, 1);
        std::fs::write(dir.join("wal.bin"), &wal).unwrap();
    }

    #[test]
    fn cleanly_closed_v1_store_is_migrated_not_clean_reopened() {
        // Regression: a v1 pair whose snapshot already absorbed the whole
        // (empty) WAL looks "clean", but taking the clean-reopen fast
        // path would append current-version frames to a v1-header WAL —
        // undecodable on the next open, i.e. silent data loss. Old
        // versions must always go through the migrating checkpoint.
        let dir = TempDir::new("v1-clean");
        std::fs::create_dir_all(dir.path()).unwrap();
        let mut arena = ExprArena::new();
        let t1 = parse(&mut arena, r"\x. x").unwrap();
        let t2 = parse(&mut arena, "v").unwrap();
        write_clean_v1_pair(dir.path(), &arena, &[t1, t2]);

        let t3 = parse(&mut arena, "w + w").unwrap();
        {
            let store = AlphaStore::<u64>::open(dir.path()).expect("v1 opens");
            assert_eq!(store.num_terms(), 2);
            // The open must have checkpointed to the current format…
            let snap_now = std::fs::read(dir.path().join("snapshot.bin")).unwrap();
            assert_eq!(
                u16::from_le_bytes(snap_now[8..10].try_into().unwrap()),
                alpha_store::persist::format::FORMAT_VERSION,
                "a clean-shaped v1 pair must still be migrated"
            );
            // …so appends land in a current-version WAL.
            store.insert(&arena, t3);
        }
        // The post-migration insert survives the next open.
        let reopened = AlphaStore::<u64>::open(dir.path()).expect("reopen");
        assert_eq!(reopened.num_terms(), 3, "no insert lost after migration");
        assert!(reopened.lookup(&arena, t3).is_some());
        assert!(reopened.stats().is_exact());
    }

    #[test]
    fn v1_snapshot_and_wal_open_under_v2_and_migrate() {
        let dir = TempDir::new("v1-migrate");
        std::fs::create_dir_all(dir.path()).unwrap();
        let scheme = alpha_hash::combine::HashScheme::<u64>::new(7);
        let mut arena = ExprArena::new();
        let identity = parse(&mut arena, r"\x. x").unwrap();
        let free_v = parse(&mut arena, "v").unwrap();
        let third = parse(&mut arena, "w + w").unwrap();
        let hash_of = |n| alpha_hash::hashed::hash_expr(&arena, n, &scheme);

        // ---- snapshot.bin, format v1, holding {\x. x} and {v} ----------
        let mut snap = Vec::new();
        snap.extend_from_slice(b"AHSNAP01");
        put_u16(&mut snap, 1); // version
        put_u32(&mut snap, 64); // hash_bits
        put_u64(&mut snap, scheme.seed());
        put_u32(&mut snap, 1); // shard_count
        snap.push(0); // granularity: Roots
        put_u64(&mut snap, 0);
        put_u64(&mut snap, 1); // wal_epoch
        put_u64(&mut snap, 0); // wal_records_applied
        for v in [2u64, 2, 0, 0, 0, 0, 0, 0] {
            put_u64(&mut snap, v); // stats: 2 terms, 2 classes
        }
        put_u32(&mut snap, 2); // class_count
        for &term in &[identity, free_v] {
            put_hash(&mut snap, hash_of(term));
            put_u64(&mut snap, 1); // members
            put_u64(&mut snap, 1); // occurrences
            let (canon, root) = to_debruijn(&arena, term);
            put_canon_v1(&mut snap, &canon, root);
        }
        put_u32(&mut snap, 2); // term_count
        put_u32(&mut snap, 0); // term 0 -> class 0
        put_u32(&mut snap, 1); // term 1 -> class 1
        put_u32(&mut snap, 0); // term_subs (empty at Roots)
        put_u32(&mut snap, 0);
        let crc = crc32(&snap[8..]);
        put_u32(&mut snap, crc);
        std::fs::write(dir.path().join("snapshot.bin"), &snap).unwrap();

        // ---- wal.bin, format v1, one record beyond the snapshot --------
        let mut wal = Vec::new();
        wal.extend_from_slice(b"AHWAL001");
        put_u16(&mut wal, 1);
        put_u32(&mut wal, 64);
        put_u64(&mut wal, scheme.seed());
        put_u32(&mut wal, 1);
        wal.push(0);
        put_u64(&mut wal, 0);
        put_u64(&mut wal, 1); // epoch
        let mut payload = Vec::new(); // v1 record: no kind byte
        put_hash(&mut payload, hash_of(third));
        let (canon, root) = to_debruijn(&arena, third);
        put_canon_v1(&mut payload, &canon, root);
        put_u32(&mut payload, 0); // sub_count
        put_u64(&mut payload, 0); // skipped
        put_u32(&mut wal, payload.len() as u32);
        put_u32(&mut wal, crc32(&payload));
        wal.extend_from_slice(&payload);
        std::fs::write(dir.path().join("wal.bin"), &wal).unwrap();

        // ---- open under v2 ---------------------------------------------
        let store = AlphaStore::<u64>::open(dir.path()).expect("v1 store opens under v2");
        assert_eq!(store.num_terms(), 3, "2 snapshot terms + 1 WAL record");
        assert_eq!(store.num_classes(), 3);
        let renamed = parse(&mut arena, r"\q. q").unwrap();
        assert!(store.lookup(&arena, renamed).is_some());
        assert!(store.lookup(&arena, free_v).is_some());
        assert!(store.lookup(&arena, third).is_some());
        let stats = store.stats();
        assert!(stats.is_exact());
        assert_eq!(stats.terms_ingested, 3);

        // The recovery checkpoint migrated the pair to the current
        // format: the snapshot on disk now carries the current version,
        // and the store keeps working (a merge into a migrated class
        // confirms).
        let snap_now = std::fs::read(dir.path().join("snapshot.bin")).unwrap();
        assert_eq!(
            u16::from_le_bytes(snap_now[8..10].try_into().unwrap()),
            alpha_store::persist::format::FORMAT_VERSION,
            "checkpoint rewrites v1 at the current format version"
        );
        let outcome = store.insert(&arena, renamed);
        assert!(!outcome.fresh, "migrated classes accept new members");
        drop(store);
        let reopened = AlphaStore::<u64>::open(dir.path()).expect("v2 reopen");
        assert_eq!(reopened.num_terms(), 4);
    }
}

#[test]
fn second_opener_is_locked_out_until_the_first_drops() {
    let dir = TempDir::new("locked");
    let mut arena = ExprArena::new();
    let root = corpus(&mut arena, 2, 1)[0];
    let builder = || AlphaStore::<u64>::builder().seed(11).shards(4);

    let first = builder().open_durable(dir.path()).expect("create");
    first.insert(&arena, root);
    // While `first` lives, any second open — recovery or create — fails
    // fast instead of truncating the WAL `first` is appending to.
    let err = expect_err(builder().open_durable(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Locked { .. }),
        "{err}"
    );
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(
        matches!(err, alpha_store::PersistError::Locked { .. }),
        "{err}"
    );

    drop(first);
    let second = builder().open_durable(dir.path()).expect("lock released");
    assert_eq!(second.num_terms(), 1);
}

#[test]
fn opening_nothing_is_not_found() {
    let dir = TempDir::new("empty");
    std::fs::create_dir_all(dir.path()).unwrap();
    let err = expect_err(AlphaStore::<u64>::open(dir.path()));
    assert!(matches!(err, alpha_store::PersistError::Io(ref e)
        if e.kind() == std::io::ErrorKind::NotFound));
}
