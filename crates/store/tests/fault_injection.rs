//! Deterministic fault-injection tests for the durable store, driven by
//! [`FaultVfs`] — no `/dev/full`, no timing, no OS special cases.
//!
//! The centrepiece is the **crash-point sweep**: a scripted workload is
//! first run fault-free to learn how many write-side I/O operations it
//! performs, then re-run once per operation index with the simulated
//! machine dying exactly there (in three flavours: clean crash-stop,
//! ENOSPC-then-crash, silent torn write then crash). After every single
//! crash point the store must reopen, match a fresh-build oracle over
//! the surviving prefix exactly (class census, partition, zero
//! unconfirmed merges), and keep ingesting.
//!
//! Around the sweep: the degraded-mode health machine (retry → heal,
//! exhaustion → read-only, lookups keep serving, `checkpoint()` heals),
//! harmless mid-snapshot failures at every op index, and the
//! auto-checkpoint watermarks.

use alpha_store::persist::{SNAPSHOT_FILE, WAL_FILE};
use alpha_store::{AlphaStore, FaultKind, FaultVfs, Granularity, Health, Rewrite, StoreError};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alpha-store-fault-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small varied corpus with alpha-duplicates (every other term is an
/// alpha-renaming), deterministic in `seed`.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 4));
        let size = 4 + (i % 3) * 6;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Everything observable about a store's classes, keyed by canonical
/// text: member, occurrence and node counts. Equal maps ⇒ same classes
/// with the same bookkeeping.
fn class_census(store: &AlphaStore<u64>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut census = BTreeMap::new();
    for class in store.classes() {
        census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
    }
    census
}

/// A no-op sleeper so retry/backoff tests never actually wait.
fn instant_sleeper() -> Arc<dyn Fn(Duration) + Send + Sync> {
    Arc::new(|_| {})
}

fn builder(granularity: Granularity, fault: &FaultVfs) -> alpha_store::StoreBuilder<u64> {
    AlphaStore::<u64>::builder()
        .seed(0xFA17)
        .shards(4)
        .granularity(granularity)
        .chunk_entries(4)
        .sync_on_commit(true)
        .vfs(Arc::new(fault.clone()))
        .persist_retries(0)
        .persist_sleeper(instant_sleeper())
}

/// The whole-root rewrite the scripted workload applies to the first
/// ingested term, distinctive enough to never be alpha-equal to a
/// corpus term. Closed, so it is valid against any host.
fn workload_patch(arena: &mut ExprArena) -> NodeId {
    lambda_lang::parse::parse(arena, r"\k. k (k (k 9))").expect("fixed patch parses")
}

/// The scripted workload the sweep kills at every op index: a batch
/// ingest, an incremental **update** of the first term (one delta WAL
/// record), a checkpoint, and a second batch ingest. Errors are
/// swallowed — once the machine "dies", later calls fail or are
/// refused, and the sweep only cares what recovery makes of the bytes
/// that reached disk.
fn run_workload(
    store: &AlphaStore<u64>,
    arena: &ExprArena,
    roots: &[NodeId],
    patch: (&ExprArena, NodeId),
) {
    let half = roots.len() / 2;
    if let Ok(outcomes) = store.try_insert_batch(arena, &roots[..half]) {
        let _ = store.try_update(
            outcomes[0].term,
            Rewrite {
                path: &[],
                arena: patch.0,
                root: patch.1,
            },
        );
    }
    let _ = store.checkpoint();
    let _ = store.try_insert_batch(arena, &roots[half..]);
}

/// The crash-point sweep for one granularity. `kinds` rotate over the op
/// indices so every index is hit and every flavour covers a spread of
/// indices.
///
/// The workload includes one incremental update (a delta WAL record),
/// so the surviving-prefix oracle is two-valued: a fresh build over the
/// surviving terms, with the update re-applied live iff the delta
/// reached disk. WAL order pins the ambiguity down to a single point —
/// the delta is appended after the first batch and before everything
/// else, so it survived whenever any later record did.
fn sweep(granularity: Granularity, tag: &str) {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xBEEF, 10);
    let half = roots.len() / 2;
    let mut patch_arena = ExprArena::new();
    let patch = workload_patch(&mut patch_arena);

    // A fresh build over the surviving prefix, the update re-applied
    // live when the delta survived. Applying it after the batch is
    // equivalent to mid-stream: the update reads only its own class.
    let fault_for_oracle = FaultVfs::new();
    let oracle_over = |survived: usize, with_update: bool| -> AlphaStore<u64> {
        let oracle = builder(granularity, &fault_for_oracle).build();
        let outcomes = oracle.insert_batch(&arena, &roots[..survived]);
        if with_update {
            oracle
                .try_update(
                    outcomes[0].term,
                    Rewrite {
                        path: &[],
                        arena: &patch_arena,
                        root: patch,
                    },
                )
                .expect("oracle update");
        }
        oracle
    };

    // Fault-free calibration run: learn the workload's op count and the
    // full-corpus oracle censuses (with and without the update, for the
    // phase-3 comparison below).
    let fault = FaultVfs::new();
    let total_ops = {
        let dir = TempDir::new(tag);
        let store = builder(granularity, &fault)
            .open_durable(dir.path())
            .expect("calibration open");
        run_workload(&store, &arena, &roots, (&patch_arena, patch));
        fault.op_count()
    };
    assert!(
        total_ops >= 12,
        "workload too small to be a meaningful sweep ({total_ops} ops)"
    );
    let oracle_full_updated = class_census(&oracle_over(roots.len(), true));
    let oracle_full_plain = class_census(&oracle_over(roots.len(), false));

    let kinds = [
        FaultKind::CrashStop,
        FaultKind::Enospc,
        FaultKind::TornWrite,
    ];
    for op in 0..total_ops {
        for &kind in &kinds {
            let dir = TempDir::new(tag);
            let fault = FaultVfs::new();

            // Phase 1: the machine dies at op `op`. An `Err` from the
            // initial open just means it died during store creation —
            // recovery below must cope with that half-created state too.
            {
                fault.crash_at(op, kind);
                if let Ok(store) = builder(granularity, &fault).open_durable(dir.path()) {
                    run_workload(&store, &arena, &roots, (&patch_arena, patch));
                }
            } // drop = crash: no shutdown ceremony

            // The reboot: faults stop, the files are whatever they are.
            fault.clear();

            // Phase 2: recovery must yield exactly a fresh build over
            // the surviving prefix, update included iff its delta made
            // it to disk.
            let recovered = builder(granularity, &fault)
                .open_durable(dir.path())
                .unwrap_or_else(|e| panic!("{tag}: recovery failed at op {op} ({kind:?}): {e}"));
            let survived = recovered.num_terms();
            assert!(
                survived <= roots.len(),
                "{tag}: op {op} ({kind:?}): {survived} terms recovered from {} ingested",
                roots.len()
            );
            let recovered_census = class_census(&recovered);
            // The delta sits between the two batches in the WAL: fewer
            // terms than the first batch means it cannot have survived,
            // more means it must have. Exactly at the boundary either
            // prefix is legal — the censuses discriminate.
            let update_survived = if survived < half {
                false
            } else if survived > half {
                true
            } else {
                recovered_census == class_census(&oracle_over(half, true))
            };
            let oracle = oracle_over(survived, update_survived);
            assert_eq!(
                recovered_census,
                class_census(&oracle),
                "{tag}: op {op} ({kind:?}): recovered census diverges from oracle over \
                 {survived} surviving terms (update survived: {update_survived})"
            );
            assert_eq!(recovered.num_classes(), oracle.num_classes());
            assert!(
                recovered.stats().is_exact(),
                "{tag}: op {op} ({kind:?}): unconfirmed merges after recovery"
            );
            assert_eq!(recovered.health(), Health::Healthy);

            // Phase 3: the recovered store keeps working — ingest the
            // lost tail and land on the matching full-corpus census.
            recovered
                .try_insert_batch(&arena, &roots[survived..])
                .unwrap_or_else(|e| panic!("{tag}: op {op} ({kind:?}): post-recovery ingest: {e}"));
            let expected_full = if update_survived {
                &oracle_full_updated
            } else {
                &oracle_full_plain
            };
            assert_eq!(
                &class_census(&recovered),
                expected_full,
                "{tag}: op {op} ({kind:?}): post-recovery ingest diverges from full oracle"
            );
        }
    }
}

#[test]
fn crash_point_sweep_roots() {
    sweep(Granularity::Roots, "sweep-roots");
}

#[test]
fn crash_point_sweep_subexpressions() {
    sweep(Granularity::Subexpressions { min_nodes: 3 }, "sweep-subs");
}

/// A persistently failing disk flips the store read-only; lookups keep
/// serving from memory; a successful `checkpoint()` heals it back to
/// full service.
#[test]
fn read_only_store_keeps_serving_and_checkpoint_heals() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xC0FFEE, 12);
    let dir = TempDir::new("read-only");
    let fault = FaultVfs::new();
    let store = builder(Granularity::Subexpressions { min_nodes: 3 }, &fault)
        .persist_retries(1)
        .open_durable(dir.path())
        .expect("open durable");

    let (known, lost) = roots.split_at(8);
    store
        .try_insert_batch(&arena, known)
        .expect("healthy ingest");
    assert_eq!(store.health(), Health::Healthy);

    // The disk dies for good: the retry is also refused, so the policy
    // exhausts and the store goes read-only with the underlying error.
    fault.fail_always(FaultKind::Enospc);
    let err = store.try_insert(&arena, lost[0]).expect_err("disk is dead");
    assert!(
        matches!(err, StoreError::Persist(_)),
        "exhausted retries surface the persistence error, got: {err}"
    );
    match store.health() {
        Health::ReadOnly(reason) => assert!(
            reason.contains("no space left"),
            "reason should carry the I/O cause, got: {reason}"
        ),
        other => panic!("expected ReadOnly, got {other:?}"),
    }

    // Further ingest is refused up front with the typed refusal…
    let err = store.try_insert(&arena, lost[1]).expect_err("read-only");
    assert!(matches!(err, StoreError::Degraded { .. }), "got: {err}");

    // …while every read path keeps serving from memory.
    assert!(store.lookup(&arena, known[0]).is_some());
    assert!(store.contains(&arena, known[0]).is_some());
    let hits = store.contains_batch(&arena, known);
    assert!(hits.iter().all(Option::is_some));
    assert_eq!(store.num_terms(), 8);

    // The operator fixes the disk; checkpoint() proves it and heals.
    fault.clear();
    store.checkpoint().expect("checkpoint over a healed disk");
    assert_eq!(store.health(), Health::Healthy);
    store
        .try_insert_batch(&arena, lost)
        .expect("ingest after heal");
    assert_eq!(store.num_terms(), roots.len());

    // And what landed after the heal is durable: reopen and compare.
    let census = class_census(&store);
    drop(store);
    let reopened = builder(Granularity::Subexpressions { min_nodes: 3 }, &fault)
        .open_durable(dir.path())
        .expect("reopen");
    assert_eq!(class_census(&reopened), census);
}

/// A transient fault is absorbed by the retry policy: the insert
/// succeeds, the store passes through Degraded and heals itself.
#[test]
fn transient_fault_retries_and_heals() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x7EA, 6);
    let dir = TempDir::new("transient");
    let fault = FaultVfs::new();
    let store = builder(Granularity::Roots, &fault)
        .persist_retries(2)
        .open_durable(dir.path())
        .expect("open durable");
    store
        .try_insert_batch(&arena, &roots[..4])
        .expect("warm up");

    // Exactly the next append fails once; the retry lands it.
    fault.fail_at(fault.op_count(), FaultKind::Eio);
    store
        .try_insert(&arena, roots[4])
        .expect("retry absorbs the fault");
    assert_eq!(store.health(), Health::Healthy, "retried success heals");

    // The record landed exactly once: reopen and the term is there.
    drop(store);
    fault.clear();
    let reopened = builder(Granularity::Roots, &fault)
        .open_durable(dir.path())
        .expect("reopen");
    assert_eq!(reopened.num_terms(), 5);
    assert!(reopened.lookup(&arena, roots[4]).is_some());
}

/// A snapshot that dies mid-write — at *every* op index it draws — must
/// leave the previous snapshot and the WAL untouched, clean up its temp
/// file, and leave the store serving (degraded, not read-only). A crash
/// right there recovers everything from the old snapshot + WAL.
#[test]
fn snapshot_failure_at_every_op_is_harmless() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x5AFE, 10);

    // Calibration: how many ops does one snapshot() draw?
    let fault = FaultVfs::new();
    let dir = TempDir::new("snap-calib");
    let store = builder(Granularity::Roots, &fault)
        .open_durable(dir.path())
        .expect("open");
    store.try_insert_batch(&arena, &roots).expect("ingest");
    let before = fault.op_count();
    store.snapshot().expect("calibration snapshot");
    let snap_ops = fault.op_count() - before;
    assert!(snap_ops >= 4, "create + writes + sync + rename + dir sync");
    drop(store);

    for k in 0..snap_ops {
        let dir = TempDir::new("snap-fail");
        let fault = FaultVfs::new();
        let store = builder(Granularity::Roots, &fault)
            .open_durable(dir.path())
            .expect("open");
        store.try_insert_batch(&arena, &roots).expect("ingest");
        // A fresh store has no snapshot yet: commit a baseline one so
        // the failed attempt below has something it must not damage.
        store.snapshot().expect("baseline snapshot");
        let snap_path = dir.path().join(SNAPSHOT_FILE);
        let old_snapshot = std::fs::read(&snap_path).expect("baseline snapshot bytes");
        let old_wal_len = std::fs::metadata(dir.path().join(WAL_FILE))
            .expect("wal")
            .len();

        fault.fail_at(fault.op_count() + k, FaultKind::Enospc);
        let err = store.snapshot().expect_err("the k-th snapshot op dies");
        assert!(
            err.to_string().contains("snapshot"),
            "typed as a snapshot error: {err}"
        );
        assert!(
            matches!(store.health(), Health::Degraded(_)),
            "failed snapshot degrades, never kills: {:?}",
            store.health()
        );

        // Previous snapshot and WAL are byte-identical; the temp file
        // is gone.
        assert_eq!(
            std::fs::read(&snap_path).expect("old snapshot intact"),
            old_snapshot,
            "op {k}: failed snapshot must not touch the committed one"
        );
        assert_eq!(
            std::fs::metadata(dir.path().join(WAL_FILE))
                .expect("wal")
                .len(),
            old_wal_len,
            "op {k}: failed snapshot must not touch the WAL"
        );
        assert!(
            !snap_path.with_extension("tmp").exists(),
            "op {k}: temp file must be cleaned up"
        );

        // The store still serves and still ingests (degraded ≠ dead)…
        assert!(store.lookup(&arena, roots[0]).is_some());
        let extra = corpus(&mut arena, 0xE47A ^ k, 1);
        store
            .try_insert_batch(&arena, &extra)
            .expect("degraded store still ingests");

        // …and a crash right now recovers everything from disk.
        drop(store);
        fault.clear();
        let recovered = builder(Granularity::Roots, &fault)
            .open_durable(dir.path())
            .expect("recovery after failed snapshot");
        assert_eq!(recovered.num_terms(), roots.len() + 1);
        assert!(recovered.stats().is_exact());
    }
}

/// The record-count watermark: ingest past it and the store checkpoints
/// itself — WAL truncated, snapshot advanced — without any explicit
/// maintenance call.
#[test]
fn auto_checkpoint_trips_on_record_watermark() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xAC, 20);
    let dir = TempDir::new("auto-records");
    let fault = FaultVfs::new();
    let store = builder(Granularity::Roots, &fault)
        .auto_checkpoint_records(8)
        .open_durable(dir.path())
        .expect("open");
    for &r in &roots {
        store.try_insert(&arena, r).expect("ingest");
        assert!(
            store.wal_records().expect("durable") <= 8,
            "the WAL must never grow past the watermark plus the current chunk"
        );
    }
    assert!(
        store.wal_records().expect("durable") < roots.len() as u64,
        "auto-checkpoint must have truncated the WAL at least once"
    );
    assert_eq!(store.health(), Health::Healthy);

    // Everything is durable across the snapshot/WAL split.
    let census = class_census(&store);
    drop(store);
    let reopened = builder(Granularity::Roots, &fault)
        .open_durable(dir.path())
        .expect("reopen");
    assert_eq!(reopened.num_terms(), roots.len());
    assert_eq!(class_census(&reopened), census);
}

/// The byte watermark, same shape: WAL bytes since the last checkpoint
/// stay bounded by the watermark plus one chunk.
#[test]
fn auto_checkpoint_trips_on_byte_watermark() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xAB, 16);
    let dir = TempDir::new("auto-bytes");
    let fault = FaultVfs::new();
    let store = builder(Granularity::Roots, &fault)
        .auto_checkpoint_bytes(2 * 1024)
        .open_durable(dir.path())
        .expect("open");
    store.try_insert_batch(&arena, &roots).expect("ingest");
    let wal_len = std::fs::metadata(dir.path().join(WAL_FILE))
        .expect("wal")
        .len();
    assert!(
        wal_len < 16 * 1024,
        "byte watermark must keep the WAL bounded, got {wal_len} bytes"
    );
    drop(store);
    let reopened = builder(Granularity::Roots, &fault)
        .open_durable(dir.path())
        .expect("reopen");
    assert_eq!(reopened.num_terms(), roots.len());
}

/// An auto-checkpoint that fails mid-flight must degrade the store but
/// never fail the insert that tripped it — the chunk is already in the
/// WAL.
#[test]
fn failed_auto_checkpoint_never_fails_the_insert() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xFA11, 12);
    let dir = TempDir::new("auto-fail");
    let fault = FaultVfs::new();
    let store = builder(Granularity::Roots, &fault)
        .auto_checkpoint_records(5)
        .open_durable(dir.path())
        .expect("open");
    store
        .try_insert_batch(&arena, &roots[..3])
        .expect("below watermark");

    // Probe: how many WAL ops does one below-watermark insert draw?
    let wal_ops_per_insert = {
        let before = fault.op_count();
        store.try_insert(&arena, roots[3]).expect("probe insert");
        fault.op_count() - before
    };
    // The next insert trips the watermark (5 records reached): its WAL
    // append succeeds, then the auto-checkpoint's snapshot create —
    // the first op *after* the insert's own ops — dies.
    fault.fail_at(fault.op_count() + wal_ops_per_insert, FaultKind::Enospc);
    store
        .try_insert(&arena, roots[4])
        .expect("the insert must succeed even though its auto-checkpoint dies");
    assert!(
        matches!(store.health(), Health::Degraded(_)),
        "failed auto-checkpoint degrades: {:?}",
        store.health()
    );

    // The watermark is still tripped; the next insert retries the
    // checkpoint over the healed disk and the store heals itself.
    fault.clear();
    store.try_insert(&arena, roots[5]).expect("ingest");
    assert_eq!(store.health(), Health::Healthy);
    assert!(store.wal_records().expect("durable") <= 1);
}

/// In-memory stores never degrade and refuse nothing: the health
/// machine is durable-only surface, `try_insert` is total.
#[test]
fn in_memory_stores_are_always_healthy() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x1, 4);
    let store = AlphaStore::<u64>::builder().seed(1).build();
    store
        .try_insert_batch(&arena, &roots)
        .expect("in-memory ingest is total");
    assert_eq!(store.health(), Health::Healthy);
    assert!(
        store.checkpoint().is_err(),
        "no durable state to checkpoint"
    );
}
