//! Oracle proptests for the hash-consed canon DAG backend: the DAG-backed
//! [`AlphaStore`] must be observationally identical to a **standalone-canon
//! reference build** — a test-local reimplementation of the pre-DAG design
//! that keeps one private canonical `DbArena` per class and confirms every
//! merge with `db_eq`, no sharing anywhere.
//!
//! Compared surfaces, at u64 and u128 hash widths × `Roots` and
//! `Subexpressions` granularity:
//!
//! * the **partition** of the ingested terms into classes;
//! * the **census**: canonical text → (members, occurrences, node count)
//!   over every class, root and subterm classes alike;
//! * the **stats** that are chunking-independent (terms, classes created,
//!   indexed/skipped subterm occurrences, total confirmed merges,
//!   exactness);
//! * the canon-DAG accounting: `logical_nodes` equals exactly the node
//!   total the reference build holds resident, and `resident_nodes` never
//!   exceeds it.

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_store::{AlphaStore, Granularity};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::debruijn::{db_eq, db_print, to_debruijn, DbArena, DbId};
use lambda_lang::uniquify::uniquify_into;
use lambda_lang::visit::postorder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// A varied corpus with alpha-duplicates (small seed pool, every other
/// term alpha-renamed).
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 5));
        let size = 4 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// One reference class: a standalone canonical arena (the pre-DAG
/// resident representation) plus the bookkeeping the store keeps.
struct RefClass {
    canon: DbArena,
    root: DbId,
    members: u64,
    occurrences: u64,
}

/// The standalone-canon reference store: hash → candidate classes,
/// merges confirmed by `db_eq` against each candidate's private arena.
struct RefStore<H> {
    buckets: HashMap<H, Vec<usize>>,
    classes: Vec<RefClass>,
    terms: u64,
    subterms_indexed: u64,
    skipped: u64,
}

impl<H: HashWord> RefStore<H> {
    fn new() -> Self {
        RefStore {
            buckets: HashMap::new(),
            classes: Vec::new(),
            terms: 0,
            subterms_indexed: 0,
            skipped: 0,
        }
    }

    /// Inserts one (sub)term occurrence, returning its class index.
    fn insert_entry(
        &mut self,
        scheme: &HashScheme<H>,
        arena: &ExprArena,
        node: NodeId,
        is_root: bool,
    ) -> usize {
        let hash = alpha_hash::hashed::hash_expr(arena, node, scheme);
        let (canon, root) = to_debruijn(arena, node);
        let bucket = self.buckets.entry(hash).or_default();
        for &ci in bucket.iter() {
            let class = &self.classes[ci];
            if db_eq(&class.canon, class.root, &canon, root) {
                let class = &mut self.classes[ci];
                class.occurrences += 1;
                class.members += u64::from(is_root);
                return ci;
            }
        }
        let ci = self.classes.len();
        bucket.push(ci);
        self.classes.push(RefClass {
            canon,
            root,
            members: u64::from(is_root),
            occurrences: 1,
        });
        ci
    }

    /// Ingests one term under `granularity`, returning the root's class.
    fn insert(
        &mut self,
        scheme: &HashScheme<H>,
        arena: &ExprArena,
        term: NodeId,
        granularity: Granularity,
    ) -> usize {
        self.terms += 1;
        if let Granularity::Subexpressions { min_nodes } = granularity {
            let floor = min_nodes.max(1);
            for node in postorder(arena, term) {
                if node == term {
                    continue;
                }
                if arena.subtree_size(node) < floor {
                    self.skipped += 1;
                } else {
                    self.subterms_indexed += 1;
                    self.insert_entry(scheme, arena, node, false);
                }
            }
        }
        self.insert_entry(scheme, arena, term, true)
    }

    /// Canonical text → (members, occurrences, node count); the class
    /// census, keyed exactly like the store's.
    fn census(&self) -> BTreeMap<String, (u64, u64, usize)> {
        let mut out = BTreeMap::new();
        for class in &self.classes {
            let old = out.insert(
                db_print(&class.canon, class.root),
                (class.members, class.occurrences, class.canon.len()),
            );
            assert!(old.is_none(), "reference classes have unique canon");
        }
        out
    }

    /// What the pre-DAG design kept resident: Σ standalone arena sizes.
    fn resident_nodes(&self) -> u64 {
        self.classes.iter().map(|c| c.canon.len() as u64).sum()
    }
}

fn check_against_reference<H: HashWord>(seed: u64, granularity: Granularity) {
    let scheme: HashScheme<H> = HashScheme::new(0xDA6 ^ seed);
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, seed, 28);

    let store: AlphaStore<H> = AlphaStore::builder()
        .scheme(scheme)
        .shards(4)
        .granularity(granularity)
        .build();
    let outcomes = store.insert_batch(&arena, &roots);

    let mut reference: RefStore<H> = RefStore::new();
    let ref_classes: Vec<usize> = roots
        .iter()
        .map(|&r| reference.insert(&scheme, &arena, r, granularity))
        .collect();

    // Partition: term i and j share a class in the store iff they do in
    // the reference.
    for i in 0..roots.len() {
        for j in 0..i {
            assert_eq!(
                outcomes[i].class == outcomes[j].class,
                ref_classes[i] == ref_classes[j],
                "partition disagreement on pair ({i},{j})"
            );
        }
    }

    // Census: same classes, same bookkeeping, keyed by canonical text.
    let mut store_census = BTreeMap::new();
    for class in store.classes() {
        let old = store_census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
        assert!(old.is_none(), "store classes have unique canon");
    }
    assert_eq!(store_census, reference.census());

    // Chunking-independent stats.
    let stats = store.stats();
    assert!(stats.is_exact());
    assert_eq!(stats.terms_ingested, reference.terms);
    assert_eq!(stats.classes_created, reference.classes.len() as u64);
    assert_eq!(stats.subterms_indexed, reference.subterms_indexed);
    assert_eq!(stats.subterms_skipped_min_nodes, reference.skipped);
    assert_eq!(
        stats.merges_confirmed + stats.subterm_merges_confirmed,
        (reference.terms + reference.subterms_indexed) - reference.classes.len() as u64,
        "total confirmed merges are fixed by the final state"
    );

    // DAG accounting: the reference's resident total IS the store's
    // logical total, and hash-consing can only shrink residency.
    let dag = store.canon_dag_stats();
    assert_eq!(dag.logical_nodes, reference.resident_nodes());
    assert!(dag.resident_nodes <= dag.logical_nodes);
    assert!(dag.sharing_ratio() >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dag_store_matches_standalone_reference_at_roots(seed in any::<u64>()) {
        check_against_reference::<u64>(seed, Granularity::Roots);
        check_against_reference::<u128>(seed, Granularity::Roots);
    }

    #[test]
    fn dag_store_matches_standalone_reference_at_subexpressions(
        seed in any::<u64>(),
        floor_wide in any::<bool>(),
    ) {
        let g = Granularity::Subexpressions { min_nodes: if floor_wide { 3 } else { 1 } };
        check_against_reference::<u64>(seed, g);
        check_against_reference::<u128>(seed, g);
    }
}

#[test]
fn subexpression_corpus_shares_canon_storage_heavily() {
    // The acceptance-criterion shape in miniature: a duplicate-heavy
    // corpus at Subexpressions granularity must hold several times fewer
    // resident canon nodes than the standalone design would.
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xC0DE, 120);
    let store: AlphaStore<u64> = AlphaStore::builder().seed(0x5EED).subexpressions(3).build();
    store.insert_batch(&arena, &roots);
    let dag = store.canon_dag_stats();
    assert!(
        dag.sharing_ratio() >= 3.0,
        "expected ≥3x sharing on a duplicate-heavy subexpression corpus: {dag}"
    );
}
