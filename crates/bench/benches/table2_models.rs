//! Criterion version of Table 2: the three real-life model expressions
//! (synthetic equivalents at the paper's node counts), all four
//! algorithms.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::Algorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let scheme: HashScheme<u64> = HashScheme::new(0x7AB2);
    let mut arena = ExprArena::new();
    let models = [
        ("mnist_cnn", expr_gen::mnist_cnn(&mut arena)),
        ("gmm", expr_gen::gmm(&mut arena)),
        ("bert12", expr_gen::bert(&mut arena, 12)),
    ];

    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, root) in models {
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.name(), name), &root, |b, &root| {
                b.iter(|| std::hint::black_box(alg.run(&arena, root, &scheme)));
            });
        }
    }
    group.finish();
}

criterion_group!(table2_models, benches);
criterion_main!(table2_models);
