//! Criterion version of Figure 2 at CI-friendly sizes: time to hash all
//! subexpressions of balanced and unbalanced random expressions, all four
//! algorithms. The full sweep (to 10⁷ nodes, with budget-based skipping)
//! lives in the `fig2` binary.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::Algorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_family(c: &mut Criterion, family: &str) {
    let scheme: HashScheme<u64> = HashScheme::new(0xBEAC);
    let mut group = c.benchmark_group(format!("fig2_{family}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for n in [1_000usize, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(7 ^ n as u64);
        let mut arena = ExprArena::with_capacity(n);
        let root = match family {
            "balanced" => expr_gen::balanced(&mut arena, n, &mut rng),
            _ => expr_gen::unbalanced(&mut arena, n, &mut rng),
        };
        for alg in Algorithm::ALL {
            // Locally nameless is quadratic: skip the sizes that would
            // take minutes per sample on the unbalanced family.
            if alg == Algorithm::LocallyNameless && family == "unbalanced" && n > 10_000 {
                continue;
            }
            if alg == Algorithm::LocallyNameless && n > 100_000 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(alg.run(&arena, root, &scheme)));
            });
        }
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_family(c, "balanced");
    bench_family(c, "unbalanced");
}

criterion_group!(fig2_small, benches);
criterion_main!(fig2_small);
