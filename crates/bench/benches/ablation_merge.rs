//! Ablation: the §4.8 smaller-subtree merge vs the §4.6 transform-both
//! merge, on the same hashed representation. This isolates the design
//! choice that takes the algorithm from Θ(n²) to O(n log n) map
//! operations (Lemma 6.1).

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::{HashedSummariser, MergeStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let scheme: HashScheme<u64> = HashScheme::new(0xAB1A);
    let mut group = c.benchmark_group("ablation_merge");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for family in ["balanced", "unbalanced"] {
        for n in [1_000usize, 10_000, 50_000] {
            let mut rng = StdRng::seed_from_u64(11 ^ n as u64);
            let mut arena = ExprArena::with_capacity(n);
            let root = match family {
                "balanced" => expr_gen::balanced(&mut arena, n, &mut rng),
                _ => expr_gen::unbalanced(&mut arena, n, &mut rng),
            };
            for (label, strategy) in [
                ("smaller_into_bigger", MergeStrategy::SmallerIntoBigger),
                ("transform_both", MergeStrategy::TransformBoth),
            ] {
                // The quadratic strategy on the deep family needs ~n²/2
                // map operations; cap it where one iteration stays in
                // seconds (the blow-up is already unambiguous there).
                if strategy == MergeStrategy::TransformBoth && family == "unbalanced" && n > 10_000
                {
                    continue;
                }
                group.bench_with_input(
                    BenchmarkId::new(format!("{family}/{label}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            let mut s = HashedSummariser::with_strategy(&arena, &scheme, strategy);
                            std::hint::black_box(s.summarise_all(&arena, root))
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(ablation_merge, benches);
criterion_main!(ablation_merge);
