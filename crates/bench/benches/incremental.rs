//! Benchmark of §6.3 incrementality: after a local rewrite, re-hashing
//! with the incremental engine (path-to-root recomputation over
//! persistent maps) vs re-running the batch summariser from scratch.
//!
//! The paper analyses this cost as O(min(h² + h·f, n log² n)); on a
//! balanced tree with all variables bound the incremental update is
//! polylogarithmic, so the gap to from-scratch should widen linearly
//! with n.

use alpha_hash::combine::HashScheme;
use alpha_hash::incremental::IncrementalHasher;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::{ExprArena, ExprNode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let scheme: HashScheme<u64> = HashScheme::new(0x16C0);
    let mut group = c.benchmark_group("incremental_vs_scratch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for n in [10_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(17 ^ n as u64);
        let mut arena = ExprArena::with_capacity(n);
        let root = expr_gen::balanced(&mut arena, n, &mut rng);

        // A small replacement subtree.
        let mut patch = ExprArena::new();
        let p1 = patch.var_named("p");
        let p2 = patch.var_named("q");
        let patch_root = patch.app(p1, p2);

        // Incremental: build once, measure the edit. Each edit replaces
        // the previously inserted subtree, so no O(n) target search
        // pollutes the measurement.
        group.bench_with_input(BenchmarkId::new("incremental_edit", n), &n, |b, _| {
            let mut engine = IncrementalHasher::new(arena.clone(), root, scheme);
            let mut target = engine
                .find(|a, node| matches!(a.node(node), ExprNode::Var(_)))
                .expect("a leaf to replace");
            b.iter(|| {
                let outcome = engine
                    .replace_subtree(target, &patch, patch_root)
                    .expect("edit");
                target = outcome.new_root;
                std::hint::black_box(outcome.stats)
            });
        });

        // From scratch: one full re-hash (what a non-incremental system
        // does after any edit).
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(alpha_hash::hash_all_subexpressions(&arena, root, &scheme))
            });
        });
    }
    group.finish();
}

criterion_group!(incremental, benches);
criterion_main!(incremental);
