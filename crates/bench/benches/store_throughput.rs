//! Criterion bench: `AlphaStore` ingest throughput — single-threaded
//! versus multi-threaded, batched versus one-by-one.
//!
//! The corpus is generated once; every iteration ingests it into a fresh
//! store. On a multi-core machine the `threads/8` row beats `threads/1`
//! (shard striping keeps contention low); on a single core it shows the
//! (small) threading overhead instead. `cargo run --release --bin
//! store_throughput` prints the same comparison with a JSON report.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{parallel_ingest, store_corpus};
use alpha_store::AlphaStore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, 2_000, 97);
    let scheme: HashScheme<u64> = HashScheme::new(0x5EED);

    let mut group = c.benchmark_group("store_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for threads in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let store: AlphaStore<u64> =
                        AlphaStore::builder().scheme(scheme).shards(8).build();
                    parallel_ingest(&store, &arena, &roots, threads);
                    std::hint::black_box(store.num_classes())
                });
            },
        );
    }

    group.bench_with_input(BenchmarkId::new("unbatched", 1), &(), |b, ()| {
        b.iter(|| {
            let store: AlphaStore<u64> = AlphaStore::builder().scheme(scheme).shards(8).build();
            for &root in &roots {
                store.insert(&arena, root);
            }
            std::hint::black_box(store.num_classes())
        });
    });

    // Subexpression granularity: the same corpus, with every subterm of
    // at least 3 nodes indexed for containment queries.
    group.bench_with_input(BenchmarkId::new("subexpressions", 3), &(), |b, ()| {
        b.iter(|| {
            let store: AlphaStore<u64> = AlphaStore::builder()
                .scheme(scheme)
                .shards(8)
                .subexpressions(3)
                .build();
            store.insert_batch(&arena, &roots);
            std::hint::black_box(store.num_classes())
        });
    });

    // Durable mode: the same batched ingest with every chunk teeing a
    // group-committed WAL append (OS-buffered). NOTE: the vendored
    // criterion stub has no iter_batched, so each iteration also pays the
    // fresh-directory setup (remove_dir_all + WAL-header fsync) — this
    // row tracks regressions in the whole durable cycle, not the pure
    // ingest gap. For the clean ingest-only durability overhead, see
    // `durable.overhead_vs_memory` in BENCH_store.json (the binary
    // starts its timer after open_durable).
    let durable_dir =
        std::env::temp_dir().join(format!("store-throughput-bench-{}", std::process::id()));
    group.bench_with_input(BenchmarkId::new("durable", 1), &(), |b, ()| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&durable_dir);
            let store: AlphaStore<u64> = AlphaStore::builder()
                .scheme(scheme)
                .shards(8)
                .open_durable(&durable_dir)
                .expect("create durable store");
            store.insert_batch(&arena, &roots);
            std::hint::black_box(store.num_classes())
        });
    });
    let _ = std::fs::remove_dir_all(&durable_dir);
    group.finish();
}

criterion_group!(store_throughput, benches);
criterion_main!(store_throughput);
