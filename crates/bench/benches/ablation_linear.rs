//! Ablation: the `StructureTag`-based algorithm (§4.8 + §5, the paper's
//! choice) vs the Appendix C lazy linear-map variant. Both are
//! O(n (log n)²); the question is the constant factor (and the paper's
//! preference for the tag variant's simpler collision story).

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::HashedSummariser;
use alpha_hash::linear::LinearSummariser;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let scheme: HashScheme<u64> = HashScheme::new(0xAB1C);
    let mut group = c.benchmark_group("ablation_linear");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for family in ["balanced", "unbalanced"] {
        for n in [10_000usize, 100_000] {
            let mut rng = StdRng::seed_from_u64(13 ^ n as u64);
            let mut arena = ExprArena::with_capacity(n);
            let root = match family {
                "balanced" => expr_gen::balanced(&mut arena, n, &mut rng),
                _ => expr_gen::unbalanced(&mut arena, n, &mut rng),
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/structure_tag"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut s = HashedSummariser::new(&arena, &scheme);
                        std::hint::black_box(s.summarise_all(&arena, root))
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/linear_map"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut s = LinearSummariser::new(&arena, &scheme);
                        std::hint::black_box(s.summarise_all(&arena, root))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(ablation_linear, benches);
criterion_main!(ablation_linear);
