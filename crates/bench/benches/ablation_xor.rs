//! Ablation: XOR-maintained variable-map hashes (§5.2) vs recomputing the
//! map hash by folding over all entries at every update. This is the
//! micro-level design choice that makes the map hash O(1) per operation;
//! the fold version is what a "strong combiner everywhere" implementation
//! would be forced to do (the paper's motivation for proving XOR safe in
//! §6.2).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::hashed::{PosH, VarMapH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_lang::arena::ExprArena;
use lambda_lang::symbol::Symbol;
use std::time::Duration;

/// Applies `updates` single-entry upserts to a map of `size` entries,
/// with XOR maintenance (the paper's way).
fn xor_maintained(
    scheme: &HashScheme<u64>,
    syms: &[(Symbol, u64)],
    size: usize,
    updates: usize,
) -> u64 {
    let here = PosH {
        hash: scheme.pt_here(),
        size: 1,
    };
    let mut vm = VarMapH::singleton(scheme, syms[0].0, syms[0].1, here);
    for &(sym, nh) in &syms[1..size] {
        vm.upsert(scheme, sym, nh, here);
    }
    let mut acc = 0u64;
    for i in 0..updates {
        let (sym, nh) = syms[i % size];
        let new_pos = PosH {
            hash: scheme.pt_left(2 + i as u64, here.hash),
            size: 2,
        };
        vm.upsert(scheme, sym, nh, new_pos);
        acc ^= vm.hash(); // O(1): the XOR is already maintained
    }
    acc
}

/// The same updates, but the map hash is recomputed by a full fold after
/// each update — the cost model without the XOR trick.
fn fold_recomputed(
    scheme: &HashScheme<u64>,
    syms: &[(Symbol, u64)],
    size: usize,
    updates: usize,
) -> u64 {
    let here = PosH {
        hash: scheme.pt_here(),
        size: 1,
    };
    let mut vm = VarMapH::singleton(scheme, syms[0].0, syms[0].1, here);
    for &(sym, nh) in &syms[1..size] {
        vm.upsert(scheme, sym, nh, here);
    }
    // O(1) name-hash lookup so the fold itself is honestly O(size).
    let nh_map: std::collections::HashMap<Symbol, u64> = syms.iter().copied().collect();
    let nh_of = |target: Symbol| nh_map[&target];
    let mut acc = 0u64;
    for i in 0..updates {
        let (sym, nh) = syms[i % size];
        let new_pos = PosH {
            hash: scheme.pt_left(2 + i as u64, here.hash),
            size: 2,
        };
        vm.upsert(scheme, sym, nh, new_pos);
        // Full fold: what hashVM would cost without XOR maintenance.
        let folded = vm
            .iter()
            .fold(u64::ZERO, |h, (s, p)| h.xor(scheme.entry(nh_of(s), p.hash)));
        acc ^= folded;
    }
    acc
}

fn benches(c: &mut Criterion) {
    let scheme: HashScheme<u64> = HashScheme::new(0xAB1B);
    let mut arena = ExprArena::new();
    let syms: Vec<(Symbol, u64)> = (0..4096)
        .map(|i| {
            let s = arena.intern(&format!("v{i}"));
            (s, scheme.var_name(&format!("v{i}")))
        })
        .collect();

    let mut group = c.benchmark_group("ablation_xor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for size in [64usize, 512, 4096] {
        let updates = 2048;
        group.bench_with_input(
            BenchmarkId::new("xor_maintained", size),
            &size,
            |b, &size| {
                b.iter(|| std::hint::black_box(xor_maintained(&scheme, &syms, size, updates)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fold_recomputed", size),
            &size,
            |b, &size| {
                b.iter(|| std::hint::black_box(fold_recomputed(&scheme, &syms, size, updates)));
            },
        );
    }
    group.finish();
}

criterion_group!(ablation_xor, benches);
criterion_main!(ablation_xor);
