//! # alpha-hash-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§7 and Appendix B):
//!
//! | Artifact | Binary | Criterion bench |
//! |----------|--------|-----------------|
//! | Table 1 (algorithm properties) | `table1` | — |
//! | Figure 2 (balanced/unbalanced sweeps) | `fig2` | `fig2_small` |
//! | Table 2 (MNIST/GMM/BERT timings) | `table2` | `table2_models` |
//! | Figure 3 (BERT layer sweep) | `fig3` | — |
//! | Figure 4 (collision study, b=16) | `fig4_collisions` | — |
//! | Ablations (design choices) | — | `ablation_merge`, `ablation_xor`, `ablation_linear`, `incremental` |
//!
//! This library holds the shared pieces: the [`Algorithm`] dispatcher over
//! the four hashers of Table 1, and a self-calibrating [`measure`] timer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::SubtreeHashes;
use lambda_lang::arena::{ExprArena, NodeId};
use std::time::Instant;

/// The four algorithms of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// §2.3 — syntactic hashing (incorrect baseline).
    Structural,
    /// §2.4 — de Bruijn hashing (incorrect baseline).
    DeBruijn,
    /// §2.5 — locally nameless (correct, O(n² log n)).
    LocallyNameless,
    /// §3–§5 — this paper's algorithm.
    Ours,
}

impl Algorithm {
    /// All four, in the paper's Table 1 order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Structural,
        Algorithm::DeBruijn,
        Algorithm::LocallyNameless,
        Algorithm::Ours,
    ];

    /// Display name matching the paper (asterisk = incorrect baseline).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Structural => "Structural*",
            Algorithm::DeBruijn => "De Bruijn*",
            Algorithm::LocallyNameless => "Locally Nameless",
            Algorithm::Ours => "Ours",
        }
    }

    /// Worst-case complexity, as listed in Table 1.
    pub fn complexity(self) -> &'static str {
        match self {
            Algorithm::Structural => "O(n)",
            Algorithm::DeBruijn => "O(n log n)",
            Algorithm::LocallyNameless => "O(n^2 log n)",
            Algorithm::Ours => "O(n (log n)^2)",
        }
    }

    /// Whether this algorithm meets the §3 specification (Table 1's
    /// true-positive *and* true-negative columns).
    pub fn is_correct(self) -> bool {
        matches!(self, Algorithm::LocallyNameless | Algorithm::Ours)
    }

    /// Hashes all subexpressions with this algorithm.
    pub fn run(
        self,
        arena: &ExprArena,
        root: NodeId,
        scheme: &HashScheme<u64>,
    ) -> SubtreeHashes<u64> {
        match self {
            Algorithm::Structural => hash_baselines::hash_all_structural(arena, root, scheme),
            Algorithm::DeBruijn => hash_baselines::hash_all_debruijn(arena, root, scheme),
            Algorithm::LocallyNameless => {
                hash_baselines::hash_all_locally_nameless(arena, root, scheme)
            }
            Algorithm::Ours => alpha_hash::hash_all_subexpressions(arena, root, scheme),
        }
    }

    /// The exponent used to extrapolate run time to bigger inputs when
    /// deciding whether a measurement fits the time budget.
    pub fn growth_exponent(self) -> f64 {
        match self {
            Algorithm::Structural => 1.05,
            Algorithm::DeBruijn => 1.15,
            Algorithm::LocallyNameless => 2.1,
            Algorithm::Ours => 1.3,
        }
    }
}

/// The corpus used by the `store_throughput` bench and binary: `count`
/// terms drawn from `seed_pool` distinct generator seeds (so alpha-level
/// duplicates occur at rate `count / seed_pool`), mixing the three
/// workload families, with every other term alpha-renamed.
///
/// # Panics
///
/// Panics if `seed_pool` is zero.
pub fn store_corpus(arena: &mut ExprArena, count: usize, seed_pool: u64) -> Vec<NodeId> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(seed_pool > 0, "seed_pool must be at least 1");
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        // All variety (family, size, randomness) derives from the pooled
        // seed, so the corpus has at most `seed_pool` distinct classes and
        // dedup rate is controlled by `count / seed_pool`. Plain `i mod
        // pool` cycles through every residue, whatever the pool size.
        let seed = i as u64 % seed_pool;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = 10 + (seed as usize % 4) * 15;
        // Each term is built in a scratch arena, then copied over — the
        // shared arena is only ever a copy target, keeping corpus
        // construction linear in total corpus size.
        let mut scratch = ExprArena::new();
        let root = match seed % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::arithmetic(&mut scratch, size, &mut rng),
            _ => expr_gen::unbalanced(&mut scratch, size, &mut rng),
        };
        if i % 2 == 0 {
            // Alpha-renamed copy: same class, fresh binder names.
            roots.push(lambda_lang::uniquify::uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Ingests `roots` into `store` from `threads` scoped threads, one
/// contiguous batch per thread — the canonical multi-threaded ingest
/// driver shared by the throughput bench/binary, the `corpus_dedup`
/// example and the integration tests, so they all exercise the same path.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn parallel_ingest<H: alpha_hash::combine::HashWord>(
    store: &alpha_store::AlphaStore<H>,
    arena: &ExprArena,
    roots: &[NodeId],
    threads: usize,
) {
    assert!(threads > 0, "threads must be at least 1");
    if roots.is_empty() {
        return;
    }
    std::thread::scope(|scope| {
        for chunk in roots.chunks(roots.len().div_ceil(threads)) {
            scope.spawn(|| store.insert_batch(arena, chunk));
        }
    });
}

/// Wall-clock seconds for one run of `f` (the result is returned to keep
/// the work observable).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

/// Best-of-`reps` wall-clock seconds for `f` — the throughput binaries'
/// standard reducer (minimum over repetitions filters scheduler noise).
pub fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (secs, ()) = time_once(&mut f);
        best = best.min(secs);
    }
    best
}

/// Self-calibrating measurement: runs `f` once for warmup, then repeats
/// until `min_total_secs` of measurement accumulate (max `max_reps`),
/// returning the mean seconds per run.
pub fn measure(mut f: impl FnMut(), min_total_secs: f64, max_reps: usize) -> f64 {
    f(); // warmup
    let mut reps = 0usize;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_total_secs || reps >= max_reps {
            return elapsed / reps as f64;
        }
    }
}

/// Formats seconds the way the paper's Table 2 does (milliseconds with
/// sensible precision).
pub fn format_ms(secs: f64) -> String {
    let ms = secs * 1e3;
    if ms < 0.1 {
        format!("{ms:.3} ms")
    } else if ms < 10.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{ms:.1} ms")
    }
}

/// Replaces (or appends) the top-level `"{key}"` block in the JSON
/// report at `path`, preserving everything the other emitters wrote.
/// The file format is the hand-rolled JSON the bench binaries produce,
/// so a brace-matched splice is exact, not heuristic. `block` must be a
/// complete JSON value whose closing brace is indented two spaces (the
/// top-level member style of `BENCH_store.json`).
///
/// # Panics
///
/// Panics when the existing file is not a JSON object, or on I/O errors.
pub fn merge_json_block(path: &str, key: &str, block: &str) {
    let needle = format!("\"{key}\"");
    let mut content = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_owned());
    if let Some(at) = content.find(&needle) {
        let open = at + content[at..].find('{').expect("existing block has a body");
        let mut depth = 0usize;
        let mut end = content.len();
        for (i, b) in content.as_bytes().iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Back over the preceding comma/whitespace so the splice point
        // sits right after the previous block.
        let mut start = at;
        while start > 0 && content.as_bytes()[start - 1].is_ascii_whitespace() {
            start -= 1;
        }
        if start > 0 && content.as_bytes()[start - 1] == b',' {
            start -= 1;
        }
        content.replace_range(start..end, "");
    }
    let trimmed_len = content.trim_end().len();
    content.truncate(trimmed_len);
    assert!(content.ends_with('}'), "{path} is not a JSON object");
    content.truncate(content.len() - 1); // drop the final '}'
    let body = content.trim_end();
    let separator = if body.ends_with('{') { "" } else { "," };
    let merged = format!("{body}{separator}\n  \"{key}\": {block}\n}}\n");
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Log-spaced sizes (two points per decade) from `lo` to `hi` inclusive.
pub fn half_decade_sizes(lo: usize, hi: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut exponent = (lo as f64).log10();
    loop {
        let n = 10f64.powf(exponent).round() as usize;
        if n > hi {
            break;
        }
        if n >= lo {
            sizes.push(n);
        }
        exponent += 0.5;
    }
    if sizes.last() != Some(&hi) {
        sizes.push(hi);
    }
    sizes.dedup();
    sizes
}

/// A tiny deterministic argv parser for the figure binaries: flags are
/// `--name value` pairs.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with usage help) on a dangling flag.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let name = raw[i]
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, found {:?}", raw[i]))
                .to_owned();
            let value = raw
                .get(i + 1)
                .unwrap_or_else(|| panic!("flag --{name} needs a value"))
                .clone();
            pairs.push((name, value));
            i += 2;
        }
        Args { pairs }
    }

    /// String flag with default.
    pub fn get(&self, name: &str, default: &str) -> String {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| default.to_owned())
    }

    /// Numeric flag with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name, &default.to_string())
            .parse()
            .unwrap_or_else(|e| {
                panic!("flag --{name} expects an integer: {e}");
            })
    }

    /// Float flag with default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name, &default.to_string())
            .parse()
            .unwrap_or_else(|e| {
                panic!("flag --{name} expects a number: {e}");
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    #[test]
    fn all_algorithms_run_and_agree_on_whole_expr_modulo_alpha_where_correct() {
        let mut a = ExprArena::new();
        let e1 = parse(&mut a, r"\x. x + free").unwrap();
        let e2 = parse(&mut a, r"\y. y + free").unwrap();
        let scheme = HashScheme::new(3);
        for alg in Algorithm::ALL {
            let h1 = alg.run(&a, e1, &scheme).get(e1);
            let h2 = alg.run(&a, e2, &scheme).get(e2);
            match alg {
                Algorithm::Structural => assert_ne!(h1, h2, "{}", alg.name()),
                // De Bruijn, LN and Ours all equate whole-expression
                // alpha-variants.
                _ => assert_eq!(h1, h2, "{}", alg.name()),
            }
        }
    }

    #[test]
    fn half_decade_sizes_are_log_spaced() {
        let sizes = half_decade_sizes(10, 100_000);
        assert_eq!(sizes.first(), Some(&10));
        assert_eq!(sizes.last(), Some(&100_000));
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert!(sizes.contains(&316) || sizes.contains(&3162));
    }

    #[test]
    fn measure_returns_positive_time() {
        let t = measure(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            0.001,
            50,
        );
        assert!(t > 0.0);
    }

    #[test]
    fn format_ms_scales() {
        assert!(format_ms(0.00001).contains("0.010 ms"));
        assert!(format_ms(0.0036).contains("3.60 ms"));
        assert!(format_ms(0.82).contains("820.0 ms"));
    }
}
