//! Measures the network daemon against the in-process store it fronts:
//! loopback batched ingest through `alphahashd` (N wire clients over
//! TCP, chunked streaming, the accumulator pipeline) vs a plain
//! single-process `insert_batch` of the same corpus — plus the
//! single-insert round-trip latency distribution.
//!
//! ```text
//! cargo run --release --bin daemon_throughput -- \
//!     --terms 20000 --clients 4 --chunk-terms 512 --reps 3 \
//!     --save-json BENCH_store.json
//! ```
//!
//! `--save-json` **merges** a `"daemon"` block into an existing
//! `store_throughput` report (replacing any previous block) so one JSON
//! file tracks the whole store tier. The headline number is
//! `throughput_vs_in_process`: loopback batched ingest as a fraction of
//! the in-process rate. The daemon serializes every term, frames and
//! CRCs every chunk, and round-trips outcomes, so a fraction well below
//! 1.0 is expected; the acceptance floor for this repo is 0.33 on the
//! 1-core container.
//!
//! Every rep's result is audited: the daemon-side store must report the
//! same class count as the in-process build and zero unconfirmed merges
//! — a throughput number from a store that diverged is worthless.

use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_hash_bench::{format_ms, merge_json_block, store_corpus, Args};
use alpha_store::AlphaStore;
use alphahashd::{Client, Daemon, DaemonConfig};
use lambda_lang::arena::{ExprArena, NodeId};

/// One timed loopback run: fresh store + daemon, `clients` threads each
/// streaming its slice over its own connection, drain, audit. Returns
/// the ingest wall-clock (connect/shutdown excluded: the clock brackets
/// only the batched streaming).
fn daemon_ingest_once(
    arena: &ExprArena,
    roots: &[NodeId],
    clients: usize,
    chunk_terms: usize,
    expect_classes: usize,
) -> f64 {
    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0x5EED).build());
    let daemon = Daemon::spawn(Arc::clone(&store), DaemonConfig::default()).expect("spawn daemon");
    let addr = daemon.local_addr().to_string();

    // Connect everyone first so the measurement starts with the
    // handshakes done — the number tracks ingest, not dialing.
    let mut conns: Vec<Client> = (0..clients)
        .map(|_| {
            let mut c = Client::connect(addr.clone()).expect("connect");
            c.set_chunk_terms(chunk_terms);
            c
        })
        .collect();

    let slice_len = roots.len() / clients;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (i, client) in conns.iter_mut().enumerate() {
            let lo = i * slice_len;
            let hi = if i + 1 == clients {
                roots.len()
            } else {
                lo + slice_len
            };
            let slice = &roots[lo..hi];
            scope.spawn(move || {
                let outcomes = client.insert_batch(arena, slice).expect("wire ingest");
                assert_eq!(outcomes.len(), slice.len());
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();

    let stats = store.stats();
    assert!(
        stats.is_exact(),
        "daemon-side store must stay exact: {stats}"
    );
    assert_eq!(stats.terms_ingested as usize, roots.len());
    assert_eq!(
        store.num_classes(),
        expect_classes,
        "daemon-side partition must equal the in-process build"
    );
    let mut shut = Client::connect(addr).expect("connect for shutdown");
    shut.shutdown().expect("shutdown op");
    daemon.join();
    secs
}

fn main() {
    let args = Args::parse();
    let terms = args.get_usize("terms", 20_000);
    let clients = args.get_usize("clients", 4);
    let chunk_terms = args.get_usize("chunk-terms", 512);
    let reps = args.get_usize("reps", 3);
    let probes = args.get_usize("latency-probes", 2_000);
    let seed_pool = args.get_usize("seed-pool", 997) as u64;
    let json_path = args.get("save-json", "");
    for (flag, value) in [
        ("terms", terms),
        ("clients", clients),
        ("chunk-terms", chunk_terms),
        ("reps", reps),
        ("latency-probes", probes),
    ] {
        if value == 0 {
            eprintln!("error: --{flag} must be at least 1");
            std::process::exit(2);
        }
    }

    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, terms, seed_pool);
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "daemon_throughput: {terms} terms / {corpus_nodes} nodes, {clients} loopback clients, \
         chunk {chunk_terms}, best of {reps} (machine parallelism {cores})"
    );

    // In-process baseline: the same corpus through one plain
    // single-threaded `insert_batch` — what the daemon's fraction is
    // measured against.
    let mut expect_classes = 0;
    let mut effective_shards = (0usize, 0usize);
    let baseline = (0..reps)
        .map(|_| {
            let store: AlphaStore<u64> = AlphaStore::builder().seed(0x5EED).build();
            let t0 = Instant::now();
            store.insert_batch(&arena, &roots);
            let secs = t0.elapsed().as_secs_f64();
            expect_classes = store.num_classes();
            effective_shards = (store.shard_count(), store.table_shard_count());
            secs
        })
        .fold(f64::INFINITY, f64::min);

    // Loopback batched ingest through the daemon.
    let daemon_secs = (0..reps)
        .map(|_| daemon_ingest_once(&arena, &roots, clients, chunk_terms, expect_classes))
        .fold(f64::INFINITY, f64::min);

    let rate = |secs: f64| terms as f64 / secs;
    let ratio = baseline / daemon_secs;

    // Single-insert round-trip latency: one client, one term per
    // request, against a zero-linger daemon so the number is the
    // transport + pipeline cost, not the coalescing timer.
    let (lat_p50_us, lat_p99_us) = {
        let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0x5EED).build());
        let config = DaemonConfig {
            linger: Duration::ZERO,
            ..DaemonConfig::default()
        };
        let daemon = Daemon::spawn(Arc::clone(&store), config).expect("spawn daemon");
        let mut client = Client::connect(daemon.local_addr().to_string()).expect("connect");
        let mut lat_us: Vec<f64> = Vec::with_capacity(probes);
        for i in 0..probes {
            let root = roots[i % roots.len()];
            let t0 = Instant::now();
            client.insert(&arena, root).expect("single insert");
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        lat_us.sort_by(f64::total_cmp);
        let q = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p).round() as usize];
        client.shutdown().expect("shutdown op");
        daemon.join();
        (q(0.5), q(0.99))
    };

    println!(
        "  in-process batched : {:>10} ({:>12.0} terms/s)",
        format_ms(baseline),
        rate(baseline)
    );
    println!(
        "  loopback  batched  : {:>10} ({:>12.0} terms/s, {clients} clients)",
        format_ms(daemon_secs),
        rate(daemon_secs)
    );
    println!("  daemon vs in-process: {:.1}% (floor 33%)", 100.0 * ratio);
    println!(
        "  single-insert round trip ({probes} probes, zero linger): \
         p50 {lat_p50_us:.0} us, p99 {lat_p99_us:.0} us"
    );

    if !json_path.is_empty() {
        let block = format!(
            concat!(
                "{{\n",
                "    \"terms\": {terms},\n",
                "    \"corpus_nodes\": {nodes},\n",
                "    \"clients\": {clients},\n",
                "    \"chunk_terms\": {chunk_terms},\n",
                "    \"reps\": {reps},\n",
                "    \"available_parallelism\": {cores},\n",
                "    \"shards\": {shards},\n",
                "    \"table_shards\": {table_shards},\n",
                "    \"in_process_batched_secs\": {baseline:.6},\n",
                "    \"in_process_terms_per_sec\": {baseline_rate:.1},\n",
                "    \"loopback_batched_secs\": {daemon_secs:.6},\n",
                "    \"loopback_terms_per_sec\": {daemon_rate:.1},\n",
                "    \"throughput_vs_in_process\": {ratio:.4},\n",
                "    \"latency_probes\": {probes},\n",
                "    \"insert_round_trip_us_p50\": {lat_p50_us:.1},\n",
                "    \"insert_round_trip_us_p99\": {lat_p99_us:.1},\n",
                "    \"classes\": {classes}\n",
                "  }}"
            ),
            terms = terms,
            nodes = corpus_nodes,
            clients = clients,
            chunk_terms = chunk_terms,
            reps = reps,
            cores = cores,
            shards = effective_shards.0,
            table_shards = effective_shards.1,
            baseline = baseline,
            baseline_rate = rate(baseline),
            daemon_secs = daemon_secs,
            daemon_rate = rate(daemon_secs),
            ratio = ratio,
            probes = probes,
            lat_p50_us = lat_p50_us,
            lat_p99_us = lat_p99_us,
            classes = expect_classes,
        );
        merge_json_block(&json_path, "daemon", &block);
        println!("  merged \"daemon\" block into {json_path}");
    }
}
