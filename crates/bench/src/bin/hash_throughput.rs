//! Measures the raw hashing hot path in **nodes per second** — the number
//! that tracks the perf trajectory of the paper's O(n (log n)²) pass from
//! PR to PR — and optionally saves it as JSON.
//!
//! ```text
//! cargo run --release --bin hash_throughput -- \
//!     --terms 10000 --reps 3 --save-json BENCH_hash.json
//! ```
//!
//! Three stages of the pipeline are timed over the same corpus as
//! `store_throughput` (so the two reports compose):
//!
//! * **hash_expr** — one-shot [`hash_expr`] per term: a fresh summariser
//!   every time, the cost an occasional caller pays.
//! * **batch hash** — one [`HashedSummariser`] reused across all terms:
//!   name-hash cache, traversal scratch and map pool warm; the cost the
//!   store's batch ingest pays per term.
//! * **ingest** — full single-threaded [`AlphaStore::insert_batch`]
//!   (hashing + canonicalization + dedup), for the end-to-end rate.
//!
//! All numbers are single-threaded; the machine's `available_parallelism`
//! is recorded so reports from single-core containers are interpretable.

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::{hash_expr, HashedSummariser};
use alpha_hash_bench::{best_of, format_ms, store_corpus, Args};
use alpha_store::AlphaStore;
use lambda_lang::arena::ExprArena;

fn main() {
    let args = Args::parse();
    let terms = args.get_usize("terms", 10_000);
    let reps = args.get_usize("reps", 3);
    let shards = args.get_usize("shards", 8);
    let seed_pool = args.get_usize("seed-pool", 997) as u64;
    let json_path = args.get("save-json", "");
    for (flag, value) in [
        ("terms", terms),
        ("reps", reps),
        ("seed-pool", seed_pool as usize),
    ] {
        if value == 0 {
            eprintln!("error: --{flag} must be at least 1");
            std::process::exit(2);
        }
    }

    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, terms, seed_pool);
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    let scheme: HashScheme<u64> = HashScheme::new(0x5EED);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("hash_throughput: {terms} terms / {corpus_nodes} nodes, best of {reps}");
    println!("  machine parallelism: {cores}");

    // One-shot hashing: fresh summariser per term.
    let one_shot = best_of(reps, || {
        let mut acc = 0u64;
        for &root in &roots {
            acc ^= hash_expr(&arena, root, &scheme);
        }
        std::hint::black_box(acc);
    });

    // Batch hashing: one summariser reused across the corpus.
    let batch = best_of(reps, || {
        let mut summariser = HashedSummariser::new(&arena, &scheme);
        let mut acc = 0u64;
        for &root in &roots {
            acc ^= summariser.summarise(&arena, root).hash(&scheme);
        }
        std::hint::black_box(acc);
    });

    // End-to-end single-threaded store ingest.
    let ingest = best_of(reps, || {
        let store = AlphaStore::builder().scheme(scheme).shards(shards).build();
        store.insert_batch(&arena, &roots);
        std::hint::black_box(store.num_classes());
    });

    let node_rate = |secs: f64| corpus_nodes as f64 / secs;
    let term_rate = |secs: f64| terms as f64 / secs;
    println!(
        "  hash_expr (one-shot) : {:>10} ({:>12.0} nodes/s)",
        format_ms(one_shot),
        node_rate(one_shot)
    );
    println!(
        "  batch hash (reused)  : {:>10} ({:>12.0} nodes/s)",
        format_ms(batch),
        node_rate(batch)
    );
    println!(
        "  store ingest 1thread : {:>10} ({:>12.0} nodes/s, {:>10.0} terms/s)",
        format_ms(ingest),
        node_rate(ingest),
        term_rate(ingest)
    );

    if !json_path.is_empty() {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"hash_throughput\",\n",
                "  \"terms\": {terms},\n",
                "  \"corpus_nodes\": {nodes},\n",
                "  \"reps\": {reps},\n",
                "  \"available_parallelism\": {cores},\n",
                "  \"hash_expr_secs\": {one_shot:.6},\n",
                "  \"hash_expr_nodes_per_sec\": {one_shot_rate:.1},\n",
                "  \"batch_hash_secs\": {batch:.6},\n",
                "  \"batch_hash_nodes_per_sec\": {batch_rate:.1},\n",
                "  \"ingest_secs\": {ingest:.6},\n",
                "  \"ingest_nodes_per_sec\": {ingest_rate:.1},\n",
                "  \"ingest_terms_per_sec\": {ingest_term_rate:.1}\n",
                "}}\n",
            ),
            terms = terms,
            nodes = corpus_nodes,
            reps = reps,
            cores = cores,
            one_shot = one_shot,
            one_shot_rate = node_rate(one_shot),
            batch = batch,
            batch_rate = node_rate(batch),
            ingest = ingest,
            ingest_rate = node_rate(ingest),
            ingest_term_rate = term_rate(ingest),
        );
        std::fs::write(&json_path, json)
            .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("  wrote {json_path}");
    }
}
