//! Regenerates **Figure 4** (Appendix B): the empirical number of 16-bit
//! hash collisions for random and adversarial expression pairs, against
//! the perfect-hash floor and the Theorem 6.7 ceiling.
//!
//! ```text
//! cargo run --release -p alpha-hash-bench --bin fig4_collisions -- \
//!     [--trials 65536] [--max-size 4096] [--seed 1]
//! ```
//!
//! The paper draws 10·2¹⁶ pairs per size; the default here is 2¹⁶ so the
//! whole figure regenerates in minutes on a laptop (collision *rates* are
//! what matters, and results are normalised to collisions per 2¹⁶ pairs).
//! Every pair gets a freshly seeded combiner family, matching the
//! appendix's "no pair of expressions collides reliably across many
//! seeds" methodology.

use alpha_hash::combine::HashScheme;
use alpha_hash::hash_expr;
use alpha_hash_bench::Args;
use lambda_lang::arena::ExprArena;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let trials = args.get_usize("trials", 1 << 16);
    let max_size = args.get_usize("max-size", 4096);
    let seed = args.get_usize("seed", 1) as u64;

    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&s| s <= max_size)
        .collect();

    println!("Figure 4: 16-bit hash collisions, normalised to collisions per 2^16 pairs.");
    println!("(perfect hash expectation = 1; Theorem 6.7 ceiling = 10*n)");
    println!();
    println!(
        "{:>6} {:>12} {:>22} {:>24} {:>12}",
        "n", "trials", "random (per 2^16)", "adversarial (per 2^16)", "bound 10n"
    );

    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).rotate_left(17));

        let mut random_collisions = 0u64;
        let mut random_equivalent_discards = 0u64;
        for _ in 0..trials {
            let scheme: HashScheme<u16> = HashScheme::new(rng.random());
            let mut arena = ExprArena::with_capacity(2 * n);
            let e1 = expr_gen::balanced(&mut arena, n, &mut rng);
            let e2 = expr_gen::balanced(&mut arena, n, &mut rng);
            if hash_expr(&arena, e1, &scheme) == hash_expr(&arena, e2, &scheme) {
                // Only now do the expensive check: was the pair actually
                // alpha-equivalent (discarded per the appendix) or a real
                // collision? A 128-bit hash stands in for the predicate.
                let wide: HashScheme<u128> = HashScheme::new(0xA11A);
                if hash_expr(&arena, e1, &wide) == hash_expr(&arena, e2, &wide) {
                    random_equivalent_discards += 1;
                } else {
                    random_collisions += 1;
                }
            }
        }

        let mut adversarial_collisions = 0u64;
        for _ in 0..trials {
            let scheme: HashScheme<u16> = HashScheme::new(rng.random());
            let mut arena = ExprArena::with_capacity(2 * n);
            let (e1, e2) = expr_gen::adversarial_pair(&mut arena, n, &mut rng);
            if hash_expr(&arena, e1, &scheme) == hash_expr(&arena, e2, &scheme) {
                adversarial_collisions += 1;
            }
        }

        let norm = |c: u64| c as f64 * (1u64 << 16) as f64 / trials as f64;
        println!(
            "{:>6} {:>12} {:>22.2} {:>24.2} {:>12}",
            n,
            trials,
            norm(random_collisions),
            norm(adversarial_collisions),
            10 * n
        );
        println!(
            "CSV,{n},{trials},{},{},{},{}",
            random_collisions,
            adversarial_collisions,
            random_equivalent_discards,
            10 * n
        );
    }

    println!();
    println!("Expected shape (paper): random pairs sit near the perfect-hash floor (~1)");
    println!("independent of n; adversarial pairs grow with n but stay ~2 orders of");
    println!("magnitude below the 10n ceiling.");
}
