//! Regenerates **Figure 3**: time to hash all subexpressions of the BERT
//! expression as the number of encoder layers (and hence the node count,
//! linearly) grows.
//!
//! ```text
//! cargo run --release -p alpha-hash-bench --bin fig3 -- \
//!     [--max-layers 24] [--budget-secs 10]
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{measure, time_once, Algorithm, Args};
use lambda_lang::arena::ExprArena;

fn main() {
    let args = Args::parse();
    let max_layers = args.get_usize("max-layers", 24);
    let budget = args.get_f64("budget-secs", 10.0);

    let scheme: HashScheme<u64> = HashScheme::new(0xF163);
    let layer_counts: Vec<usize> = [1usize, 2, 3, 4, 6, 8, 12, 16, 20, 24]
        .into_iter()
        .filter(|&l| l <= max_layers)
        .collect();

    println!("Figure 3: seconds to hash all subexpressions of BERT-L.");
    println!(
        "{:>7} {:>9} {:>14} {:>14} {:>18} {:>14}",
        "layers",
        "n",
        Algorithm::Structural.name(),
        Algorithm::DeBruijn.name(),
        Algorithm::LocallyNameless.name(),
        Algorithm::Ours.name()
    );

    let mut last: [Option<(usize, f64)>; 4] = [None; 4];
    for &layers in &layer_counts {
        let mut arena = ExprArena::new();
        let root = expr_gen::bert(&mut arena, layers);
        let n = arena.subtree_size(root);

        let mut cells = Vec::new();
        for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
            if let Some((prev_n, prev_t)) = last[i] {
                let projected = prev_t * ((n as f64) / (prev_n as f64)).powf(alg.growth_exponent());
                if projected > budget {
                    cells.push("-".to_owned());
                    continue;
                }
            }
            let secs = if n >= 200_000 {
                let (secs, hashes) = time_once(|| alg.run(&arena, root, &scheme));
                std::hint::black_box(&hashes);
                secs
            } else {
                measure(
                    || {
                        std::hint::black_box(alg.run(&arena, root, &scheme));
                    },
                    0.1,
                    1000,
                )
            };
            last[i] = Some((n, secs));
            cells.push(format!("{secs:.3e}"));
            println!("CSV,bert,{layers},{n},{},{secs:.6e}", alg.name());
        }
        println!(
            "{:>7} {:>9} {:>14} {:>14} {:>18} {:>14}",
            layers, n, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!();
    println!("Expected shape (paper): Locally Nameless grows quadratically with the");
    println!("layer count (820 ms at 12 layers in the paper); Ours stays near-linear,");
    println!("a few times above De Bruijn.");
}
