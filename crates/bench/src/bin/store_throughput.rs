//! Measures `AlphaStore` ingest throughput — single-threaded vs
//! multi-threaded, batched vs one-by-one, root vs subexpression
//! granularity — and optionally saves the numbers as JSON.
//!
//! ```text
//! cargo run --release --bin store_throughput -- \
//!     --terms 20000 --threads 8 --shards 8 --reps 3 \
//!     --sub-min-nodes 3 --save-json BENCH_store.json
//! ```
//!
//! All flags are optional; `--save-json <path>` enables the JSON report
//! (the conventional path is `BENCH_store.json` in the repo root). Thread
//! speedup requires actual cores: the report includes the machine's
//! `available_parallelism` so single-core runs are interpretable.
//!
//! Besides terms/sec and nodes/sec, the report splits single-threaded
//! batched ingest into its **prepare** share (hashing + de Bruijn
//! canonicalization, the fused lock-free pass) and the remaining **store**
//! share (shard grouping, locking, bucket probes, confirm-compare), by
//! timing the prepare pass on its own. A separate run ingests the same
//! corpus at `Subexpressions { min_nodes: --sub-min-nodes }` granularity,
//! so the cost of building the containment index is tracked PR over PR
//! alongside the root-mode numbers it must not regress.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{best_of, format_ms, parallel_ingest, store_corpus, Args};
use alpha_store::{AlphaStore, Preparer};
use lambda_lang::arena::{ExprArena, NodeId};

fn ingest(
    arena: &ExprArena,
    roots: &[NodeId],
    scheme: HashScheme<u64>,
    shards: usize,
    threads: usize,
) -> AlphaStore<u64> {
    let store = AlphaStore::builder().scheme(scheme).shards(shards).build();
    parallel_ingest(&store, arena, roots, threads);
    store
}

fn ingest_subexpr(
    arena: &ExprArena,
    roots: &[NodeId],
    scheme: HashScheme<u64>,
    shards: usize,
    min_nodes: usize,
) -> AlphaStore<u64> {
    let store = AlphaStore::builder()
        .scheme(scheme)
        .shards(shards)
        .subexpressions(min_nodes)
        .build();
    store.insert_batch(arena, roots);
    store
}

/// Durable-mode ingest into a fresh directory: every batch chunk is one
/// group-committed WAL append (OS-buffered; the default durability
/// boundary). The directory is recreated per call so each rep pays the
/// same setup.
fn ingest_durable(
    arena: &ExprArena,
    roots: &[NodeId],
    scheme: HashScheme<u64>,
    shards: usize,
    dir: &std::path::Path,
) -> AlphaStore<u64> {
    let _ = std::fs::remove_dir_all(dir);
    let store = AlphaStore::builder()
        .scheme(scheme)
        .shards(shards)
        .open_durable(dir)
        .expect("create durable store");
    store.insert_batch(arena, roots);
    store
}

fn main() {
    let args = Args::parse();
    let terms = args.get_usize("terms", 20_000);
    let threads = args.get_usize("threads", 8);
    let shards = args.get_usize("shards", 8);
    let reps = args.get_usize("reps", 3);
    let seed_pool = args.get_usize("seed-pool", 997) as u64;
    let sub_min_nodes = args.get_usize("sub-min-nodes", 3);
    let json_path = args.get("save-json", "");
    for (flag, value) in [
        ("terms", terms),
        ("threads", threads),
        ("reps", reps),
        ("seed-pool", seed_pool as usize),
    ] {
        if value == 0 {
            eprintln!("error: --{flag} must be at least 1");
            std::process::exit(2);
        }
    }

    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, terms, seed_pool);
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    let scheme: HashScheme<u64> = HashScheme::new(0x5EED);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "store_throughput: {terms} terms / {corpus_nodes} nodes, {shards} shards, best of {reps}"
    );
    let table_shards = AlphaStore::builder()
        .scheme(scheme)
        .shards(shards)
        .build()
        .table_shard_count();
    println!("  machine parallelism: {cores} (effective table stripes: {table_shards})");

    // Single-threaded, unbatched (per-term lock traffic).
    let unbatched = best_of(reps, || {
        let store = AlphaStore::builder().scheme(scheme).shards(shards).build();
        for &root in &roots {
            store.insert(&arena, root);
        }
        std::hint::black_box(store.num_classes());
    });

    // Single-threaded, batched.
    let single = best_of(reps, || {
        std::hint::black_box(ingest(&arena, &roots, scheme, shards, 1).num_classes());
    });

    // Multi-threaded, batched.
    let multi = best_of(reps, || {
        std::hint::black_box(ingest(&arena, &roots, scheme, shards, threads).num_classes());
    });

    // Batched single-thread with the obs runtime toggle on vs off: the
    // ratio is what live instrumentation (clock reads, histogram
    // records) costs on the hot path. The two variants are interleaved
    // rep by rep — not measured in separate blocks — so slow drift in
    // machine load biases both sides equally.
    let (single_obs_on, single_obs_off) = {
        let run = |enabled: bool| {
            let store = AlphaStore::builder().scheme(scheme).shards(shards).build();
            store.set_obs_enabled(enabled);
            let t0 = std::time::Instant::now();
            parallel_ingest(&store, &arena, &roots, 1);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(store.num_classes());
            secs
        };
        let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            on = on.min(run(true));
            off = off.min(run(false));
        }
        (on, off)
    };
    let obs_overhead_ratio = single_obs_on / single_obs_off;

    // Prepare pass alone (fused hash + canonicalization, no store): the
    // lock-free share of single-threaded batched ingest.
    let prepare = best_of(reps, || {
        let mut preparer = Preparer::new(&arena, &scheme);
        for &root in &roots {
            std::hint::black_box(preparer.hash_and_canon(&arena, root).0);
        }
    });
    let store_side = (single - prepare).max(0.0);

    // Subexpression granularity, single-threaded batched: same corpus,
    // every subterm >= --sub-min-nodes nodes indexed for containment.
    let subexpr = best_of(reps, || {
        std::hint::black_box(
            ingest_subexpr(&arena, &roots, scheme, shards, sub_min_nodes).num_classes(),
        );
    });

    // Durable mode (WAL tee, group commit per chunk), single-threaded
    // batched: the overhead over `single` is the cost of durability.
    let durable_dir = std::path::PathBuf::from(
        args.get(
            "durable-dir",
            &std::env::temp_dir()
                .join(format!("store-throughput-durable-{}", std::process::id()))
                .to_string_lossy(),
        ),
    );
    // Timed by hand instead of `best_of` so each rep's directory setup
    // (remove + create + fsync the fresh WAL header) stays outside the
    // measurement — the number tracks ingest, not mkdir.
    let durable = (0..reps)
        .map(|_| {
            let _ = std::fs::remove_dir_all(&durable_dir);
            let store = AlphaStore::builder()
                .scheme(scheme)
                .shards(shards)
                .open_durable(&durable_dir)
                .expect("create durable store");
            let t0 = std::time::Instant::now();
            store.insert_batch(&arena, &roots);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(store.num_classes());
            secs
        })
        .fold(f64::INFINITY, f64::min);

    // One audited run for the stats block. Its obs report also supplies
    // the root-mode latency quantiles (obs is on by default).
    let store = ingest(&arena, &roots, scheme, shards, threads);
    let stats = store.stats();
    assert!(stats.is_exact(), "store must confirm every merge: {stats}");
    let obs = store.obs_report();
    let quantiles = |name: &str| {
        let h = obs.histogram(name).unwrap_or_else(|| panic!("no {name}"));
        (h.quantile(0.5), h.quantile(0.99))
    };
    let (prepare_p50, prepare_p99) = quantiles("alpha_store_prepare_ns");
    let (apply_p50, apply_p99) = quantiles("alpha_store_apply_ns");
    let (lock_wait_p50, lock_wait_p99) = quantiles("alpha_store_shard_lock_wait_ns");

    // And one audited subexpression-mode run.
    let sub_store = ingest_subexpr(&arena, &roots, scheme, shards, sub_min_nodes);
    let sub_stats = sub_store.stats();
    assert!(
        sub_stats.is_exact(),
        "subexpression merges must be confirmed too: {sub_stats}"
    );
    let indexed_entries = terms as u64 + sub_stats.subterms_indexed;

    // Canon-DAG residency of that run (the hash-consed node table shared
    // across all classes), plus batched containment-query throughput
    // answered against it. Patterns are corpus terms — every probe hits,
    // the worst case for the confirm-compare.
    let dag = sub_store.canon_dag_stats();
    let pattern_count = terms.min(2000);
    let patterns = &roots[..pattern_count];
    let contains_batch_secs = best_of(reps, || {
        let found = sub_store.contains_batch(&arena, patterns);
        assert!(found.iter().all(Option::is_some));
        std::hint::black_box(found);
    });
    let contains_qps = pattern_count as f64 / contains_batch_secs;

    // One audited durable run: ingest, crash (drop), recover, verify the
    // round trip, and time the recovery. The WAL-commit quantiles come
    // from this run's obs report.
    let (wal_bytes, reopen_secs, durable_stats, wal_commit_p50, wal_commit_p99) = {
        let d_store = ingest_durable(&arena, &roots, scheme, shards, &durable_dir);
        let d_classes = d_store.num_classes();
        let d_stats = d_store.stats();
        assert!(
            d_stats.is_exact(),
            "durable ingest must stay exact: {d_stats}"
        );
        let d_obs = d_store.obs_report();
        let commits = d_obs
            .histogram("alpha_store_wal_commit_ns")
            .expect("durable run records WAL commits");
        assert!(commits.count > 0, "durable ingest must group-commit");
        let (wal_commit_p50, wal_commit_p99) = (commits.quantile(0.5), commits.quantile(0.99));
        let wal_bytes = std::fs::metadata(durable_dir.join("wal.bin")).map_or(0, |m| m.len());
        drop(d_store);
        let t0 = std::time::Instant::now();
        let reopened: AlphaStore<u64> =
            AlphaStore::open(&durable_dir).expect("recover durable store");
        let reopen_secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            reopened.num_classes(),
            d_classes,
            "recovery must round-trip"
        );
        assert_eq!(reopened.stats(), d_stats, "stats must round-trip");
        (
            wal_bytes,
            reopen_secs,
            d_stats,
            wal_commit_p50,
            wal_commit_p99,
        )
    };
    let _ = std::fs::remove_dir_all(&durable_dir);

    let rate = |secs: f64| terms as f64 / secs;

    // Reliability: the same durable ingest over a periodically flaky
    // disk (every 5th write-side op fails once with EIO), absorbed by
    // the retry policy with a near-zero backoff so the number tracks
    // the retry *path* (truncate-to-good + re-append), not the sleep.
    // `wal_commit_ns` p99 from this run is the retry-path tail latency.
    // Small chunks so even a smoke-sized corpus draws enough write-side
    // ops (one group commit each) to be guaranteed a faulted one.
    let (retry_secs, wal_retries, retry_commit_p50, retry_commit_p99) = {
        use alpha_store::{FaultKind, FaultVfs};
        let fault = FaultVfs::new();
        let _ = std::fs::remove_dir_all(&durable_dir);
        let r_store = AlphaStore::builder()
            .scheme(scheme)
            .shards(shards)
            .chunk_entries(256)
            .vfs(std::sync::Arc::new(fault.clone()))
            .persist_retries(2)
            .persist_backoff(std::time::Duration::from_micros(10))
            .open_durable(&durable_dir)
            .expect("create durable store");
        fault.fail_every(5, FaultKind::Eio);
        let t0 = std::time::Instant::now();
        r_store.insert_batch(&arena, &roots);
        let secs = t0.elapsed().as_secs_f64();
        let r_obs = r_store.obs_report();
        let retries = r_obs
            .counter("alpha_store_wal_retries")
            .expect("retry counter exported");
        assert!(
            retries > 0,
            "a 1-in-5 fault rate must exercise the retry path"
        );
        let commits = r_obs
            .histogram("alpha_store_wal_commit_ns")
            .expect("faulted run records WAL commits");
        (secs, retries, commits.quantile(0.5), commits.quantile(0.99))
    };
    let _ = std::fs::remove_dir_all(&durable_dir);

    // The Vfs seam's ingest cost against the last pre-VFS recording
    // (PR 6's BENCH_store.json `durable.terms_per_sec`): positive =
    // slower than the baseline. Acceptance bound: <= 2%. On a shared
    // 1-core container the absolute rate swings ~15% run to run, so the
    // load-bearing form is the delta of durable-vs-in-memory overhead
    // against PR 6's recording of the same within-run ratio — both
    // sides of that ratio see the same machine, only the VFS seam
    // differs.
    const PRE_VFS_DURABLE_BASELINE_TPS: f64 = 148_240.3;
    const PRE_VFS_DURABLE_OVERHEAD_VS_MEMORY: f64 = 0.0407;
    let vfs_overhead_vs_baseline = PRE_VFS_DURABLE_BASELINE_TPS / rate(durable) - 1.0;
    let vfs_overhead_within_run = (durable / single - 1.0) - PRE_VFS_DURABLE_OVERHEAD_VS_MEMORY;
    let node_rate = |secs: f64| corpus_nodes as f64 / secs;
    println!(
        "  unbatched 1 thread : {:>10} ({:>12.0} terms/s, {:>12.0} nodes/s)",
        format_ms(unbatched),
        rate(unbatched),
        node_rate(unbatched)
    );
    println!(
        "  batched   1 thread : {:>10} ({:>12.0} terms/s, {:>12.0} nodes/s)",
        format_ms(single),
        rate(single),
        node_rate(single)
    );
    println!(
        "  batched {threads:>2} threads : {:>10} ({:>12.0} terms/s, {:>12.0} nodes/s)",
        format_ms(multi),
        rate(multi),
        node_rate(multi)
    );
    println!(
        "  batch speedup {:.2}x, thread speedup {:.2}x",
        unbatched / single,
        single / multi
    );
    println!(
        "  time split (1 thread, batched): prepare {:>10} ({:.0}%), store {:>10} ({:.0}%)",
        format_ms(prepare),
        100.0 * prepare / single,
        format_ms(store_side),
        100.0 * store_side / single
    );
    println!(
        "  subexpr   1 thread : {:>10} ({:>12.0} terms/s, {:>12.0} nodes/s, min_nodes {}, {} entries)",
        format_ms(subexpr),
        rate(subexpr),
        node_rate(subexpr),
        sub_min_nodes,
        indexed_entries,
    );
    println!(
        "  durable   1 thread : {:>10} ({:>12.0} terms/s, {:>12.0} nodes/s, {:.1}% over in-memory)",
        format_ms(durable),
        rate(durable),
        node_rate(durable),
        100.0 * (durable / single - 1.0),
    );
    println!(
        "  durable artifacts  : wal {} KiB, recovery (snapshot + replay) {}",
        wal_bytes / 1024,
        format_ms(reopen_secs),
    );
    println!(
        "  canon DAG (subexpr): {} resident / {} logical nodes ({:.2}x sharing, {} KiB)",
        dag.resident_nodes,
        dag.logical_nodes,
        dag.sharing_ratio(),
        dag.resident_bytes / 1024,
    );
    println!(
        "  contains_batch     : {:>10} for {} patterns ({:>12.0} queries/s)",
        format_ms(contains_batch_secs),
        pattern_count,
        contains_qps,
    );
    println!(
        "  obs overhead       : {:.1}% (toggled off: {:>10}); prepare p50/p99 {:.0}/{:.0} ns, \
         apply p50/p99 {:.0}/{:.0} ns, wal commit p50/p99 {:.0}/{:.0} ns",
        100.0 * (obs_overhead_ratio - 1.0),
        format_ms(single_obs_off),
        prepare_p50,
        prepare_p99,
        apply_p50,
        apply_p99,
        wal_commit_p50,
        wal_commit_p99,
    );
    println!(
        "  reliability        : vfs overhead vs pre-VFS baseline {:+.1}% cross-run / {:+.1}% \
         within-run, flaky-disk ingest {} ({} retries, commit p50/p99 {:.0}/{:.0} ns)",
        100.0 * vfs_overhead_vs_baseline,
        100.0 * vfs_overhead_within_run,
        format_ms(retry_secs),
        wal_retries,
        retry_commit_p50,
        retry_commit_p99,
    );
    println!("  {stats}");
    println!("  subexpr mode: {sub_stats}");
    println!("  durable mode: {durable_stats}");

    if !json_path.is_empty() {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"store_throughput\",\n",
                "  \"terms\": {terms},\n",
                "  \"corpus_nodes\": {nodes},\n",
                "  \"shards\": {shards},\n",
                "  \"table_shards\": {table_shards},\n",
                "  \"threads\": {threads},\n",
                "  \"reps\": {reps},\n",
                "  \"available_parallelism\": {cores},\n",
                "  \"unbatched_single_thread_secs\": {unbatched:.6},\n",
                "  \"batched_single_thread_secs\": {single:.6},\n",
                "  \"batched_multi_thread_secs\": {multi:.6},\n",
                "  \"single_thread_terms_per_sec\": {single_rate:.1},\n",
                "  \"multi_thread_terms_per_sec\": {multi_rate:.1},\n",
                "  \"single_thread_nodes_per_sec\": {single_node_rate:.1},\n",
                "  \"multi_thread_nodes_per_sec\": {multi_node_rate:.1},\n",
                "  \"prepare_single_thread_secs\": {prepare:.6},\n",
                "  \"store_single_thread_secs\": {store_side:.6},\n",
                "  \"prepare_share\": {prepare_share:.3},\n",
                "  \"batch_speedup\": {batch_speedup:.3},\n",
                "  \"thread_speedup\": {thread_speedup:.3},\n",
                "  \"classes\": {classes},\n",
                "  \"stats\": {{\n",
                "    \"terms_ingested\": {ingested},\n",
                "    \"classes_created\": {created},\n",
                "    \"merges_confirmed\": {merged},\n",
                "    \"hash_collisions\": {collisions},\n",
                "    \"unconfirmed_merges\": {unconfirmed}\n",
                "  }},\n",
                "  \"subexpr\": {{\n",
                "    \"min_nodes\": {sub_min_nodes},\n",
                "    \"single_thread_secs\": {subexpr:.6},\n",
                "    \"terms_per_sec\": {sub_rate:.1},\n",
                "    \"corpus_nodes_per_sec\": {sub_node_rate:.1},\n",
                "    \"indexed_entries\": {indexed_entries},\n",
                "    \"indexed_entries_per_sec\": {sub_entry_rate:.1},\n",
                "    \"classes\": {sub_classes},\n",
                "    \"subterms_indexed\": {subterms_indexed},\n",
                "    \"subterm_merges_confirmed\": {subterm_merges},\n",
                "    \"subterms_skipped_min_nodes\": {subterms_skipped},\n",
                "    \"unconfirmed_merges\": {sub_unconfirmed}\n",
                "  }},\n",
                "  \"durable\": {{\n",
                "    \"single_thread_secs\": {durable:.6},\n",
                "    \"terms_per_sec\": {durable_rate:.1},\n",
                "    \"corpus_nodes_per_sec\": {durable_node_rate:.1},\n",
                "    \"overhead_vs_memory\": {durable_overhead:.4},\n",
                "    \"wal_bytes\": {wal_bytes},\n",
                "    \"recovery_secs\": {reopen_secs:.6},\n",
                "    \"unconfirmed_merges_after_recovery\": {durable_unconfirmed}\n",
                "  }},\n",
                "  \"canon_dag\": {{\n",
                "    \"granularity_min_nodes\": {sub_min_nodes},\n",
                "    \"resident_nodes\": {dag_resident_nodes},\n",
                "    \"resident_bytes\": {dag_resident_bytes},\n",
                "    \"resident_names\": {dag_resident_names},\n",
                "    \"logical_nodes\": {dag_logical_nodes},\n",
                "    \"sharing_ratio\": {dag_sharing:.3},\n",
                "    \"contains_batch_patterns\": {cb_patterns},\n",
                "    \"contains_batch_secs\": {cb_secs:.6},\n",
                "    \"contains_batch_queries_per_sec\": {cb_qps:.1}\n",
                "  }},\n",
                "  \"reliability\": {{\n",
                "    \"baseline_durable_terms_per_sec\": {pre_vfs_baseline:.1},\n",
                "    \"durable_terms_per_sec\": {durable_rate:.1},\n",
                "    \"vfs_overhead_vs_baseline\": {vfs_overhead:.4},\n",
                "    \"baseline_durable_overhead_vs_memory\": {pre_vfs_ovm:.4},\n",
                "    \"vfs_overhead_within_run\": {vfs_overhead_wr:.4},\n",
                "    \"flaky_disk_ingest_secs\": {retry_secs:.6},\n",
                "    \"flaky_disk_terms_per_sec\": {retry_rate:.1},\n",
                "    \"wal_retries\": {wal_retries},\n",
                "    \"retry_commit_ns_p50\": {retry_commit_p50:.1},\n",
                "    \"retry_commit_ns_p99\": {retry_commit_p99:.1}\n",
                "  }},\n",
                "  \"obs\": {{\n",
                "    \"single_thread_obs_on_secs\": {single_obs_on:.6},\n",
                "    \"single_thread_obs_off_secs\": {single_obs_off:.6},\n",
                "    \"overhead_ratio\": {obs_overhead_ratio:.4},\n",
                "    \"prepare_ns_p50\": {prepare_p50:.1},\n",
                "    \"prepare_ns_p99\": {prepare_p99:.1},\n",
                "    \"apply_ns_p50\": {apply_p50:.1},\n",
                "    \"apply_ns_p99\": {apply_p99:.1},\n",
                "    \"shard_lock_wait_ns_p50\": {lock_wait_p50:.1},\n",
                "    \"shard_lock_wait_ns_p99\": {lock_wait_p99:.1},\n",
                "    \"wal_commit_ns_p50\": {wal_commit_p50:.1},\n",
                "    \"wal_commit_ns_p99\": {wal_commit_p99:.1}\n",
                "  }}\n",
                "}}\n",
            ),
            terms = terms,
            nodes = corpus_nodes,
            shards = store.shard_count(),
            table_shards = table_shards,
            threads = threads,
            reps = reps,
            cores = cores,
            unbatched = unbatched,
            single = single,
            multi = multi,
            single_rate = rate(single),
            multi_rate = rate(multi),
            single_node_rate = node_rate(single),
            multi_node_rate = node_rate(multi),
            prepare = prepare,
            store_side = store_side,
            prepare_share = prepare / single,
            batch_speedup = unbatched / single,
            thread_speedup = single / multi,
            classes = store.num_classes(),
            ingested = stats.terms_ingested,
            created = stats.classes_created,
            merged = stats.merges_confirmed,
            collisions = stats.hash_collisions,
            unconfirmed = stats.unconfirmed_merges,
            sub_min_nodes = sub_min_nodes,
            subexpr = subexpr,
            sub_rate = rate(subexpr),
            sub_node_rate = node_rate(subexpr),
            indexed_entries = indexed_entries,
            sub_entry_rate = indexed_entries as f64 / subexpr,
            sub_classes = sub_store.num_classes(),
            subterms_indexed = sub_stats.subterms_indexed,
            subterm_merges = sub_stats.subterm_merges_confirmed,
            subterms_skipped = sub_stats.subterms_skipped_min_nodes,
            sub_unconfirmed = sub_stats.unconfirmed_merges,
            durable = durable,
            durable_rate = rate(durable),
            durable_node_rate = node_rate(durable),
            durable_overhead = durable / single - 1.0,
            wal_bytes = wal_bytes,
            reopen_secs = reopen_secs,
            durable_unconfirmed = durable_stats.unconfirmed_merges,
            dag_resident_nodes = dag.resident_nodes,
            dag_resident_bytes = dag.resident_bytes,
            dag_resident_names = dag.resident_names,
            dag_logical_nodes = dag.logical_nodes,
            dag_sharing = dag.sharing_ratio(),
            cb_patterns = pattern_count,
            cb_secs = contains_batch_secs,
            cb_qps = contains_qps,
            pre_vfs_baseline = PRE_VFS_DURABLE_BASELINE_TPS,
            vfs_overhead = vfs_overhead_vs_baseline,
            pre_vfs_ovm = PRE_VFS_DURABLE_OVERHEAD_VS_MEMORY,
            vfs_overhead_wr = vfs_overhead_within_run,
            retry_secs = retry_secs,
            retry_rate = rate(retry_secs),
            wal_retries = wal_retries,
            retry_commit_p50 = retry_commit_p50,
            retry_commit_p99 = retry_commit_p99,
            single_obs_on = single_obs_on,
            single_obs_off = single_obs_off,
            obs_overhead_ratio = obs_overhead_ratio,
            prepare_p50 = prepare_p50,
            prepare_p99 = prepare_p99,
            apply_p50 = apply_p50,
            apply_p99 = apply_p99,
            lock_wait_p50 = lock_wait_p50,
            lock_wait_p99 = lock_wait_p99,
            wal_commit_p50 = wal_commit_p50,
            wal_commit_p99 = wal_commit_p99,
        );
        std::fs::write(&json_path, json)
            .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("  wrote {json_path}");
    }
}
