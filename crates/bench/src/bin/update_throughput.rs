//! Measures the incremental update path: a spine-local rewrite on a
//! deep term through [`AlphaStore::update`] versus the only alternative
//! the store offered before — re-ingesting the whole rewritten term.
//!
//! ```text
//! cargo run --release --bin update_throughput -- \
//!     --nodes 10000 --updates 200 --reps 3 --save-json BENCH_store.json
//! ```
//!
//! The workload holds one balanced ~`--nodes`-node term and rewrites
//! the literal at its deepest leaf over and over, each time with a
//! fresh value so every rewrite moves the term to a new class. The
//! incremental side re-hashes only the root-to-leaf spine (the cached
//! `IncrementalHasher` makes consecutive updates O(spine)); the
//! baseline re-hashes and re-interns all ~`--nodes` nodes. The report
//! lands as the top-level `"incremental"` block of `--save-json`
//! (conventionally `BENCH_store.json`), merged without touching the
//! other emitters' blocks.
//!
//! The acceptance gate rides along: the run aborts if the spine-local
//! rewrite is not at least 5x faster than delete+reinsert.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{format_ms, merge_json_block, Args};
use alpha_store::{AlphaStore, Rewrite};
use lambda_lang::arena::{ExprArena, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The child-slot path to the deepest leaf under `root`, following the
/// larger subtree at every branch.
fn deepest_path(arena: &ExprArena, root: NodeId) -> Vec<u32> {
    let mut path = Vec::new();
    let mut node = root;
    loop {
        let children: Vec<NodeId> = arena.node(node).children().into_iter().collect();
        if children.is_empty() {
            return path;
        }
        let (slot, &child) = children
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| arena.subtree_size(c))
            .expect("non-empty children");
        path.push(slot as u32);
        node = child;
    }
}

/// The node `path` resolves to, in an arena holding the same shape.
fn resolve(arena: &ExprArena, root: NodeId, path: &[u32]) -> NodeId {
    let mut node = root;
    for &slot in path {
        let children: Vec<NodeId> = arena.node(node).children().into_iter().collect();
        node = children[slot as usize];
    }
    node
}

fn main() {
    let args = Args::parse();
    let nodes = args.get_usize("nodes", 10_000);
    let updates = args.get_usize("updates", 200);
    let reps = args.get_usize("reps", 3);
    let json_path = args.get("save-json", "");
    println!("== update_throughput ==");
    for (flag, value) in [("nodes", nodes), ("updates", updates), ("reps", reps)] {
        println!("  --{flag} {value}");
    }

    let scheme: HashScheme<u64> = HashScheme::new(0x1C4E);
    let mut rng = StdRng::seed_from_u64(2026);
    let mut arena = ExprArena::with_capacity(nodes);
    let root = expr_gen::balanced(&mut arena, nodes, &mut rng);

    let store: AlphaStore<u64> = AlphaStore::builder().scheme(scheme).shards(8).build();
    let ins = store.insert(&arena, root);

    // The rewrite site: the deepest leaf of the canonical
    // representative — the worst honest case for "spine-local", since
    // the spine is the full tree height.
    let mut rep_arena = ExprArena::new();
    let rep = store.representative_into(ins.class, &mut rep_arena);
    let path = deepest_path(&rep_arena, rep);
    assert!(
        path.len() >= 8,
        "a {nodes}-node balanced term should be at least 8 deep, got {}",
        path.len()
    );

    // Warm one update so the timed loop measures the steady state the
    // serving story cares about (cached spine hasher, interned canon).
    let mut patch_arena = ExprArena::new();
    let warm = patch_arena.int(-1);
    store.update(
        ins.term,
        Rewrite {
            path: &path,
            arena: &patch_arena,
            root: warm,
        },
    );

    // Baseline setup: the same term in a private arena, rewritten by
    // mutating the target leaf in place before each full re-ingest.
    let baseline: AlphaStore<u64> = AlphaStore::builder().scheme(scheme).shards(8).build();
    let mut base_arena = ExprArena::new();
    let base_root = base_arena.import_subtree(&rep_arena, rep);
    let base_leaf = resolve(&base_arena, base_root, &path);
    baseline.insert(&base_arena, base_root);

    let mut update_best = f64::INFINITY;
    let mut reinsert_best = f64::INFINITY;
    let mut spine_total = 0u64;
    let mut spine_samples = 0u64;
    for rep_ix in 0..reps {
        // Incremental: `updates` spine-local rewrites, fresh value each.
        let start = Instant::now();
        for k in 0..updates {
            let value = (rep_ix * updates + k) as i64;
            let mut pa = ExprArena::new();
            let patch = pa.int(value);
            let out = store.update(
                ins.term,
                Rewrite {
                    path: &path,
                    arena: &pa,
                    root: patch,
                },
            );
            spine_total += out.spine_nodes_rehashed;
            spine_samples += 1;
        }
        update_best = update_best.min(start.elapsed().as_secs_f64());

        // Baseline: the same rewrites as whole-term re-ingests.
        let start = Instant::now();
        for k in 0..updates {
            let value = (rep_ix * updates + k) as i64;
            base_arena.replace_node(base_leaf, lambda_lang::arena::ExprNode::Lit(value.into()));
            baseline.insert(&base_arena, base_root);
        }
        reinsert_best = reinsert_best.min(start.elapsed().as_secs_f64());
    }

    assert_eq!(store.num_terms(), 1, "updates repoint, they never mint");
    assert_eq!(
        store.stats().unconfirmed_merges,
        0,
        "exactness must survive every update"
    );
    let spine_avg = spine_total as f64 / spine_samples as f64;
    let per_update = update_best / updates as f64;
    let per_reinsert = reinsert_best / updates as f64;
    let speedup = per_reinsert / per_update;

    println!(
        "  spine depth {} ({} nodes total), avg {spine_avg:.1} nodes re-hashed per update",
        path.len(),
        nodes
    );
    println!(
        "  incremental update: {} for {updates} rewrites ({:.1}/s)",
        format_ms(update_best),
        updates as f64 / update_best
    );
    println!(
        "  delete+reinsert:    {} for {updates} rewrites ({:.1}/s)",
        format_ms(reinsert_best),
        updates as f64 / reinsert_best
    );
    println!("  speedup: {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "gate: spine-local rewrite must be at least 5x faster than \
         delete+reinsert on a {nodes}-node term, got {speedup:.2}x"
    );

    if !json_path.is_empty() {
        let block = format!(
            concat!(
                "{{\n",
                "    \"nodes\": {nodes},\n",
                "    \"updates\": {updates},\n",
                "    \"reps\": {reps},\n",
                "    \"path_depth\": {depth},\n",
                "    \"spine_nodes_rehashed_avg\": {spine_avg:.1},\n",
                "    \"update_secs\": {update_secs:.6},\n",
                "    \"updates_per_sec\": {update_rate:.1},\n",
                "    \"reinsert_secs\": {reinsert_secs:.6},\n",
                "    \"reinserts_per_sec\": {reinsert_rate:.1},\n",
                "    \"speedup_vs_reinsert\": {speedup:.3},\n",
                "    \"unconfirmed_merges\": 0\n",
                "  }}"
            ),
            nodes = nodes,
            updates = updates,
            reps = reps,
            depth = path.len(),
            spine_avg = spine_avg,
            update_secs = update_best,
            update_rate = updates as f64 / update_best,
            reinsert_secs = reinsert_best,
            reinsert_rate = updates as f64 / reinsert_best,
            speedup = speedup,
        );
        merge_json_block(&json_path, "incremental", &block);
        println!("  merged \"incremental\" block into {json_path}");
    }
}
