//! The wide-open-term benchmark: sustained free-variable width, the
//! regime where the var-map's sorted-Vec spill paid O(width) per merge
//! step (a Θ(n·width) wall-time cliff) and the persistent-tree tier
//! restores O(log width).
//!
//! ```text
//! cargo run --release --bin widemap -- \
//!     --size 150000 --width 32768 --reps 3 --min-speedup 10 \
//!     --save-json BENCH_store.json
//! ```
//!
//! Times [`HashedSummariser`] over one [`expr_gen::wide_open_spine`]
//! twice: with the default map pool (tree tier past the spill threshold)
//! and with the tree tier disabled (`set_tree_threshold(usize::MAX)`,
//! the pre-tier Vec-spill behaviour). Both runs must produce the same
//! root hash and the same Lemma 6.1 `merge_ops` count — the tier is a
//! representation change, not a semantics change — and the tree run must
//! beat the Vec run by at least `--min-speedup` (the acceptance bar is
//! 10x at the default size/width). A root-mode store ingest of the spine
//! plus an alpha-renamed copy rides along, auditing that the tier keeps
//! the store exact end to end.
//!
//! `--save-json` merges a `"widemap"` block into the shared
//! `BENCH_store.json` report, replacing any previous block.

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::HashedSummariser;
use alpha_hash_bench::{format_ms, merge_json_block, Args};
use alpha_store::AlphaStore;
use expr_gen::wide_open_spine;
use lambda_lang::arena::ExprArena;
use lambda_lang::uniquify::uniquify_into;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let size = args.get_usize("size", 150_000);
    let width = args.get_usize("width", 32_768);
    let reps = args.get_usize("reps", 3);
    let min_speedup = args.get_f64("min-speedup", 10.0);
    let json_path = args.get("save-json", "");
    for (flag, value) in [("size", size), ("width", width), ("reps", reps)] {
        if value == 0 {
            eprintln!("error: --{flag} must be at least 1");
            std::process::exit(2);
        }
    }

    let mut rng = StdRng::seed_from_u64(0x71DE);
    let mut arena = ExprArena::new();
    let root = wide_open_spine(&mut arena, size, width, &mut rng);
    let scheme: HashScheme<u64> = HashScheme::new(0x5EED);
    println!("widemap: {size}-node open spine, sustained width {width}, best of {reps}");

    // Tiered (default pool: inline -> Vec -> tree past the threshold).
    let mut tree_secs = f64::INFINITY;
    let mut tree_hash = 0u64;
    let mut merge_ops = 0u64;
    for _ in 0..reps {
        let mut s = HashedSummariser::new(&arena, &scheme);
        let t0 = std::time::Instant::now();
        let summary = s.summarise(&arena, root);
        tree_secs = tree_secs.min(t0.elapsed().as_secs_f64());
        tree_hash = std::hint::black_box(summary.structure.hash);
        merge_ops = s.merge_ops;
    }

    // Tree tier disabled: the sorted-Vec spill all the way up — the
    // honest pre-tier baseline this PR removes from the hot path.
    let mut vec_secs = f64::INFINITY;
    let mut vec_hash = 0u64;
    let mut vec_ops = 0u64;
    for _ in 0..reps {
        let mut s = HashedSummariser::new(&arena, &scheme);
        s.set_tree_threshold(usize::MAX);
        let t0 = std::time::Instant::now();
        let summary = s.summarise(&arena, root);
        vec_secs = vec_secs.min(t0.elapsed().as_secs_f64());
        vec_hash = std::hint::black_box(summary.structure.hash);
        vec_ops = s.merge_ops;
    }

    assert_eq!(
        tree_hash, vec_hash,
        "the tree tier is a representation change, not a semantics change"
    );
    assert_eq!(merge_ops, vec_ops, "Lemma 6.1 accounting must not move");
    let speedup = vec_secs / tree_secs;
    let tree_ns_per_op = tree_secs * 1e9 / merge_ops as f64;
    let vec_ns_per_op = vec_secs * 1e9 / merge_ops as f64;

    println!(
        "  tree tier : {:>10} ({merge_ops} merge ops, {tree_ns_per_op:.1} ns/op)",
        format_ms(tree_secs)
    );
    println!(
        "  vec spill : {:>10} ({vec_ns_per_op:.1} ns/op)",
        format_ms(vec_secs)
    );
    println!("  speedup   : {speedup:.1}x (floor {min_speedup:.1}x)");
    assert!(
        speedup >= min_speedup,
        "tree tier must beat the Vec spill by >= {min_speedup:.1}x on the wide-open \
         regime, got {speedup:.2}x ({tree_secs:.4}s vs {vec_secs:.4}s)"
    );

    // End to end: the spine and an alpha-renamed copy through a
    // root-mode store — the merge of two width-{width} e-summaries must
    // confirm, exactly, through the same tiered maps.
    let copy = {
        let scratch = std::mem::replace(&mut arena, ExprArena::new());
        let root2 = uniquify_into(&scratch, root, &mut arena);
        let root1 = arena.import_subtree(&scratch, root);
        (root1, root2)
    };
    let store: AlphaStore<u64> = AlphaStore::builder().scheme(scheme).build();
    let t0 = std::time::Instant::now();
    store.insert_batch(&arena, &[copy.0, copy.1]);
    let store_secs = t0.elapsed().as_secs_f64();
    let stats = store.stats();
    assert!(stats.is_exact(), "wide ingest must stay exact: {stats}");
    assert_eq!(store.num_classes(), 1, "the copy is alpha-equivalent");
    println!(
        "  store     : {:>10} for spine + alpha-copy ({} classes, {} merges confirmed)",
        format_ms(store_secs),
        store.num_classes(),
        stats.merges_confirmed
    );

    if !json_path.is_empty() {
        let block = format!(
            concat!(
                "{{\n",
                "    \"spine_nodes\": {size},\n",
                "    \"sustained_width\": {width},\n",
                "    \"reps\": {reps},\n",
                "    \"merge_ops\": {merge_ops},\n",
                "    \"tree_tier_secs\": {tree_secs:.6},\n",
                "    \"vec_spill_secs\": {vec_secs:.6},\n",
                "    \"speedup\": {speedup:.2},\n",
                "    \"tree_ns_per_merge_op\": {tree_ns_per_op:.1},\n",
                "    \"vec_ns_per_merge_op\": {vec_ns_per_op:.1},\n",
                "    \"store_ingest_secs\": {store_secs:.6},\n",
                "    \"merges_confirmed\": {merges},\n",
                "    \"unconfirmed_merges\": {unconfirmed}\n",
                "  }}"
            ),
            size = size,
            width = width,
            reps = reps,
            merge_ops = merge_ops,
            tree_secs = tree_secs,
            vec_secs = vec_secs,
            speedup = speedup,
            tree_ns_per_op = tree_ns_per_op,
            vec_ns_per_op = vec_ns_per_op,
            store_secs = store_secs,
            merges = stats.merges_confirmed,
            unconfirmed = stats.unconfirmed_merges,
        );
        merge_json_block(&json_path, "widemap", &block);
        println!("  merged \"widemap\" block into {json_path}");
    }
}
