//! Regenerates **Figure 2**: time to hash all subexpressions of random
//! expressions — balanced (left panel) and wildly unbalanced (right
//! panel) — for the four algorithms, sizes log-spaced up to 10⁷ nodes.
//!
//! ```text
//! cargo run --release -p alpha-hash-bench --bin fig2 -- \
//!     [--family balanced|unbalanced|both] [--max-nodes 10000000] \
//!     [--budget-secs 15] [--seed 42]
//! ```
//!
//! An algorithm is skipped at a size (printed `-`) when its projected run
//! time exceeds the per-point budget — exactly how the paper's plot
//! truncates the locally nameless line on unbalanced inputs. Output is a
//! human-readable table plus `family,n,algorithm,seconds` CSV lines
//! (prefixed `CSV,`) for plotting.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{half_decade_sizes, measure, time_once, Algorithm, Args};
use lambda_lang::arena::ExprArena;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let family = args.get("family", "both");
    let max_nodes = args.get_usize("max-nodes", 10_000_000);
    let budget = args.get_f64("budget-secs", 15.0);
    let seed = args.get_usize("seed", 42) as u64;

    let families: Vec<&str> = match family.as_str() {
        "both" => vec!["balanced", "unbalanced"],
        "balanced" => vec!["balanced"],
        "unbalanced" => vec!["unbalanced"],
        other => panic!("--family must be balanced|unbalanced|both, got {other}"),
    };

    let scheme: HashScheme<u64> = HashScheme::new(0xF162);
    let sizes = half_decade_sizes(10, max_nodes);

    for family in families {
        println!();
        println!("Figure 2 ({family} expressions): seconds to hash all subexpressions");
        println!(
            "{:>10} {:>14} {:>14} {:>18} {:>14}",
            "n",
            Algorithm::Structural.name(),
            Algorithm::DeBruijn.name(),
            Algorithm::LocallyNameless.name(),
            Algorithm::Ours.name()
        );

        // Last measured (n, secs) per algorithm, for budget projection.
        let mut last: [Option<(usize, f64)>; 4] = [None; 4];

        for &n in &sizes {
            let mut rng = StdRng::seed_from_u64(seed ^ (n as u64));
            let mut arena = ExprArena::with_capacity(n);
            let root = match family {
                "balanced" => expr_gen::balanced(&mut arena, n, &mut rng),
                _ => expr_gen::unbalanced(&mut arena, n, &mut rng),
            };

            let mut cells: Vec<String> = Vec::new();
            for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
                // Project the cost from the previous point; skip if over
                // budget.
                if let Some((prev_n, prev_t)) = last[i] {
                    let projected =
                        prev_t * ((n as f64) / (prev_n as f64)).powf(alg.growth_exponent());
                    if projected > budget {
                        cells.push("-".to_owned());
                        continue;
                    }
                }
                let secs = if n >= 100_000 {
                    // Large inputs: single timed run (already >> timer
                    // resolution).
                    let (secs, hashes) = time_once(|| alg.run(&arena, root, &scheme));
                    std::hint::black_box(&hashes);
                    secs
                } else {
                    measure(
                        || {
                            std::hint::black_box(alg.run(&arena, root, &scheme));
                        },
                        0.1,
                        1000,
                    )
                };
                last[i] = Some((n, secs));
                cells.push(format!("{secs:.3e}"));
                println!("CSV,{family},{n},{},{secs:.6e}", alg.name());
            }
            println!(
                "{:>10} {:>14} {:>14} {:>18} {:>14}",
                n, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    println!();
    println!("Expected shape (paper): Structural < De Bruijn < Ours << Locally Nameless,");
    println!("with Locally Nameless going quadratic (and hitting the budget) on the");
    println!("unbalanced family while Ours stays near log-linear.");
}
