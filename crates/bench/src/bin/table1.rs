//! Regenerates **Table 1**: the algorithms considered in the evaluation,
//! their complexity, and whether their positives/negatives are reliable —
//! with the correctness columns *measured*, not asserted, by running each
//! algorithm on the paper's §2.3/§2.4 counterexamples.
//!
//! ```text
//! cargo run --release -p alpha-hash-bench --bin table1
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::Algorithm;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::parse::parse;
use lambda_lang::uniquify::uniquify;

/// Finds the lambda subterms of `src` with exactly `size` nodes, in
/// pre-order.
fn lambda_subterms(arena: &ExprArena, root: NodeId, size: usize) -> Vec<NodeId> {
    lambda_lang::visit::preorder(arena, root)
        .into_iter()
        .filter(|&n| matches!(arena.node(n), ExprNode::Lam(_, _)) && arena.subtree_size(n) == size)
        .collect()
}

struct Verdict {
    true_positives: bool,
    true_negatives: bool,
}

/// Empirically classifies one algorithm using the paper's counterexamples.
fn classify(alg: Algorithm) -> Verdict {
    let scheme: HashScheme<u64> = HashScheme::new(0xBEEF);

    // -- True negatives (no false negatives): the two alpha-equivalent
    //    (\x.x+t) subterms of §2.4 must hash equal, and the §2.2 lambda
    //    pair too.
    let mut a = ExprArena::new();
    let parsed = parse(&mut a, r"\t. foo (\x. x + t) (\y. \x. x + t)").unwrap();
    let (a, root) = uniquify(&a, parsed);
    let hashes = alg.run(&a, root, &scheme);
    let lams = lambda_subterms(&a, root, 6);
    let no_false_negative_1 = hashes.get(lams[0]) == hashes.get(lams[1]);

    let mut b = ExprArena::new();
    let parsed = parse(&mut b, r"foo (\x. x+7) (\y. y+7)").unwrap();
    let (b, root_b) = uniquify(&b, parsed);
    let hashes_b = alg.run(&b, root_b, &scheme);
    let lams_b = lambda_subterms(&b, root_b, 6);
    let no_false_negative_2 = hashes_b.get(lams_b[0]) == hashes_b.get(lams_b[1]);

    // -- True positives (no false positives): the §2.4 pair
    //    (\x. t*(x+1)) vs (\x. y*(x+1)) must hash differently.
    let mut c = ExprArena::new();
    let parsed = parse(&mut c, r"\t. foo (\x. t * (x+1)) (\y. \x. y * (x+1))").unwrap();
    let (c, root_c) = uniquify(&c, parsed);
    let hashes_c = alg.run(&c, root_c, &scheme);
    let lams_c = lambda_subterms(&c, root_c, 10);
    let no_false_positive = hashes_c.get(lams_c[0]) != hashes_c.get(lams_c[1]);

    Verdict {
        true_positives: no_false_positive,
        true_negatives: no_false_negative_1 && no_false_negative_2,
    }
}

fn main() {
    println!("Table 1: Algorithms considered in the evaluation.");
    println!("(True pos./True neg. measured on the paper's SS2.3-2.4 counterexamples.)");
    println!();
    println!(
        "{:<18} {:<16} {:>9} {:>9}",
        "Algorithm", "Complexity", "True pos.", "True neg."
    );
    println!("{}", "-".repeat(56));
    for alg in Algorithm::ALL {
        let verdict = classify(alg);
        println!(
            "{:<18} {:<16} {:>9} {:>9}",
            alg.name(),
            alg.complexity(),
            if verdict.true_positives { "Yes" } else { "No" },
            if verdict.true_negatives { "Yes" } else { "No" },
        );
    }
    println!();
    println!("Paper's Table 1 for comparison:");
    println!("  Structural*        O(n)             Yes  No");
    println!("  De Bruijn*         O(n log n)       No   No");
    println!("  Locally Nameless   O(n^2 log n)     Yes  Yes");
    println!("  Ours               O(n (log n)^2)   Yes  Yes");
}
