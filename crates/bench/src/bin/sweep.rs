//! Shard × thread × granularity × workload sweep: where does ingest
//! throughput stop scaling, and which knob is the ceiling?
//!
//! ```text
//! cargo run --release --bin sweep -- \
//!     --shards 1,4,16 --threads 1,2,4 \
//!     --granularity roots,subexpr --workload closed,wide \
//!     --terms 10000 --reps 3 --save-json BENCH_sweep.json
//! ```
//!
//! Every cell of the matrix ingests the same per-workload corpus into a
//! fresh in-memory store (shard count = table stripe count = the swept
//! value) from `--threads` threads, best of `--reps`, and is audited —
//! identical class counts across every cell of a workload, zero
//! unconfirmed merges. The report is a flat JSON array next to
//! `BENCH_store.json`, one object per cell, so runs on different
//! machines (or different PRs) diff cleanly.
//!
//! Workloads:
//! * `closed` — the `store_throughput` corpus: closed terms, heavy
//!   alpha-duplication, narrow var-maps (the paper's §7.1 regime).
//! * `wide` — alpha-paired [`expr_gen::wide_open_spine`]s: sustained
//!   free-var width, the tiered var-map's target regime.

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{format_ms, parallel_ingest, store_corpus, Args};
use alpha_store::AlphaStore;
use lambda_lang::arena::{ExprArena, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Comma-separated usize list flag.
fn get_list(args: &Args, name: &str, default: &str) -> Vec<usize> {
    args.get(name, default)
        .split(',')
        .map(|part| {
            part.trim()
                .parse()
                .unwrap_or_else(|e| panic!("flag --{name}: bad entry {part:?}: {e}"))
        })
        .collect()
}

/// The `wide` corpus: alpha-paired open spines, so merges confirm
/// through genuinely wide e-summary maps. `terms` is a node budget knob,
/// not a term count — wide terms are big, so the corpus holds
/// `terms / 500` spines of 2000 nodes each (at least 4).
fn wide_corpus(arena: &mut ExprArena, terms: usize) -> Vec<NodeId> {
    let count = (terms / 500).max(4);
    let mut roots = Vec::with_capacity(count);
    for i in 0..count / 2 {
        let mut scratch = ExprArena::new();
        let mut srng = StdRng::seed_from_u64(0x51DE ^ i as u64);
        let spine = expr_gen::wide_open_spine(&mut scratch, 2_000, 256, &mut srng);
        roots.push(arena.import_subtree(&scratch, spine));
        roots.push(lambda_lang::uniquify::uniquify_into(&scratch, spine, arena));
    }
    roots
}

fn main() {
    let args = Args::parse();
    let shards_list = get_list(&args, "shards", "1,4,16");
    let threads_list = get_list(&args, "threads", "1,2,4");
    let granularities: Vec<String> = args
        .get("granularity", "roots,subexpr")
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    let workloads: Vec<String> = args
        .get("workload", "closed,wide")
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    let terms = args.get_usize("terms", 10_000);
    let reps = args.get_usize("reps", 3);
    let sub_min_nodes = args.get_usize("sub-min-nodes", 3);
    let json_path = args.get("save-json", "");
    assert!(terms > 0 && reps > 0, "--terms/--reps must be at least 1");
    for &s in &shards_list {
        assert!(
            s > 0 && s.is_power_of_two(),
            "--shards entries must be powers of two, got {s}"
        );
    }

    let scheme: HashScheme<u64> = HashScheme::new(0x5EED);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sweep: shards {shards_list:?} x threads {threads_list:?} x {granularities:?} x \
         {workloads:?}, {terms} terms, best of {reps} (machine parallelism {cores})"
    );

    let mut rows: Vec<String> = Vec::new();
    for workload in &workloads {
        let mut arena = ExprArena::new();
        let roots = match workload.as_str() {
            "closed" => store_corpus(&mut arena, terms, 997),
            "wide" => wide_corpus(&mut arena, terms),
            other => panic!("unknown --workload entry {other:?} (closed|wide)"),
        };
        let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();

        for granularity in &granularities {
            // The class-count audit baseline for this (workload,
            // granularity): every matrix cell must reproduce it.
            let mut expect_classes: Option<usize> = None;
            for &shards in &shards_list {
                for &threads in &threads_list {
                    let build = || {
                        let b = AlphaStore::<u64>::builder()
                            .scheme(scheme)
                            .shards(shards)
                            .table_shards(shards.clamp(1, 256));
                        match granularity.as_str() {
                            "roots" => b.build(),
                            "subexpr" => b.subexpressions(sub_min_nodes).build(),
                            other => {
                                panic!("unknown --granularity entry {other:?} (roots|subexpr)")
                            }
                        }
                    };
                    let mut best = f64::INFINITY;
                    let mut classes = 0usize;
                    let mut table_shards = 0usize;
                    for _ in 0..reps {
                        let store = build();
                        let t0 = std::time::Instant::now();
                        parallel_ingest(&store, &arena, &roots, threads);
                        best = best.min(t0.elapsed().as_secs_f64());
                        let stats = store.stats();
                        assert!(
                            stats.is_exact(),
                            "sweep cell (shards {shards}, threads {threads}, {granularity}, \
                             {workload}) must stay exact: {stats}"
                        );
                        classes = store.num_classes();
                        table_shards = store.table_shard_count();
                    }
                    match expect_classes {
                        None => expect_classes = Some(classes),
                        Some(expected) => assert_eq!(
                            classes, expected,
                            "partition must not depend on shards/threads"
                        ),
                    }
                    let rate = roots.len() as f64 / best;
                    println!(
                        "  {workload:<6} {granularity:<8} shards {shards:>3} (stripes \
                         {table_shards:>3}) threads {threads:>2}: {:>10} ({rate:>10.0} terms/s)",
                        format_ms(best)
                    );
                    rows.push(format!(
                        concat!(
                            "    {{\n",
                            "      \"workload\": \"{workload}\",\n",
                            "      \"granularity\": \"{granularity}\",\n",
                            "      \"shards\": {shards},\n",
                            "      \"table_shards\": {table_shards},\n",
                            "      \"threads\": {threads},\n",
                            "      \"terms\": {count},\n",
                            "      \"corpus_nodes\": {nodes},\n",
                            "      \"secs\": {best:.6},\n",
                            "      \"terms_per_sec\": {rate:.1},\n",
                            "      \"classes\": {classes}\n",
                            "    }}"
                        ),
                        workload = workload,
                        granularity = granularity,
                        shards = shards,
                        table_shards = table_shards,
                        threads = threads,
                        count = roots.len(),
                        nodes = corpus_nodes,
                        best = best,
                        rate = rate,
                        classes = classes,
                    ));
                }
            }
        }
    }

    if !json_path.is_empty() {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"sweep\",\n",
                "  \"terms\": {terms},\n",
                "  \"reps\": {reps},\n",
                "  \"available_parallelism\": {cores},\n",
                "  \"runs\": [\n{rows}\n  ]\n",
                "}}\n"
            ),
            terms = terms,
            reps = reps,
            cores = cores,
            rows = rows.join(",\n"),
        );
        std::fs::write(&json_path, json)
            .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("  wrote {json_path}");
    }
}
