//! Regenerates **Table 2**: milliseconds to compute all subexpression
//! hashes for the three real-life model expressions (synthetic
//! equivalents tuned to the paper's node counts — see DESIGN.md).
//!
//! ```text
//! cargo run --release -p alpha-hash-bench --bin table2
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash_bench::{format_ms, measure, Algorithm};
use lambda_lang::arena::{ExprArena, NodeId};

fn main() {
    let scheme: HashScheme<u64> = HashScheme::new(0x7AB2);

    let mut arena = ExprArena::new();
    let models: Vec<(&str, NodeId)> = vec![
        ("MNIST CNN", expr_gen::mnist_cnn(&mut arena)),
        ("GMM", expr_gen::gmm(&mut arena)),
        ("BERT 12", expr_gen::bert(&mut arena, 12)),
    ];

    println!("Table 2: time to compute all subexpression hashes (ms).");
    print!("{:<18}", "Algorithm");
    for (name, root) in &models {
        print!(" {:>18}", format!("{name} n={}", arena.subtree_size(*root)));
    }
    println!();
    println!("{}", "-".repeat(18 + 19 * models.len()));

    let mut csv_lines: Vec<String> = Vec::new();
    for alg in Algorithm::ALL {
        let mut row = format!("{:<18}", alg.name());
        for (name, root) in &models {
            let secs = measure(
                || {
                    std::hint::black_box(alg.run(&arena, *root, &scheme));
                },
                0.2,
                5000,
            );
            row.push_str(&format!(" {:>18}", format_ms(secs)));
            csv_lines.push(format!("CSV,{name},{},{secs:.6e}", alg.name()));
        }
        println!("{row}");
    }

    println!();
    for line in csv_lines {
        println!("{line}");
    }

    println!();
    println!("Paper's Table 2 (Haskell, their hardware) for shape comparison:");
    println!("  Algorithm          MNIST n=840   GMM n=1810   BERT12 n=12975");
    println!("  Structural*        0.011 ms      0.027 ms     0.38 ms");
    println!("  De Bruijn*         0.035 ms      0.089 ms     1.70 ms");
    println!("  Locally Nameless   0.30 ms       2.00 ms      820.0 ms");
    println!("  Ours               0.14 ms       0.36 ms      3.6 ms");
    println!();
    println!("Shape checks: Ours within a small factor of De Bruijn; Locally Nameless");
    println!("blows up on BERT (quadratic in the deep let/lambda nest) while Ours stays small.");
}
