//! End-to-end integration tests: every worked example in the paper, run
//! through the full pipeline (parse → uniquify → hash → group → apply).

use hash_modulo_alpha::prelude::*;

fn prepared(src: &str) -> (ExprArena, NodeId) {
    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, src).unwrap_or_else(|e| panic!("{src}: {e}"));
    uniquify(&arena, parsed)
}

fn scheme() -> HashScheme<u64> {
    HashScheme::default()
}

/// Subexpressions of `root` of a given size, pre-order.
fn subterms_of_size(arena: &ExprArena, root: NodeId, size: usize) -> Vec<NodeId> {
    lambda_lang::visit::preorder(arena, root)
        .into_iter()
        .filter(|&n| arena.subtree_size(n) == size)
        .collect()
}

#[test]
fn section1_cse_example_v_plus_7() {
    // (a + (v+7)) * (v+7) — the two v+7 subtrees form a class.
    let (arena, root) = prepared("(a + (v+7)) * (v+7)");
    let classes = hash_classes(&arena, root, &scheme());
    let v7_class = classes
        .iter()
        .find(|c| c.len() == 2 && arena.subtree_size(c[0]) == 5)
        .expect("v+7 class");
    assert_eq!(v7_class.len(), 2);
}

#[test]
fn section1_alpha_equivalent_let_terms() {
    let (arena, root) = prepared("(a + (let x = exp z in x+7)) * (let y = exp z in y+7)");
    let classes = hash_classes(&arena, root, &scheme());
    // The two let-terms are alpha-equivalent: same class.
    let lets: Vec<NodeId> = lambda_lang::visit::preorder(&arena, root)
        .into_iter()
        .filter(|&n| matches!(arena.node(n), ExprNode::Let(_, _, _)))
        .collect();
    assert_eq!(lets.len(), 2);
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    assert_eq!(hashes.get(lets[0]), hashes.get(lets[1]));
    let _ = classes;
}

#[test]
fn section1_lambda_pair() {
    let (arena, root) = prepared(r"foo (\x. x+7) (\y. y+7)");
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    let lams = subterms_of_size(&arena, root, 6);
    assert_eq!(lams.len(), 2);
    assert_eq!(hashes.get(lams[0]), hashes.get(lams[1]));
}

#[test]
fn section2_2_false_negative_map_example() {
    // map (\y.y+1) (map (\x.x+1) vs): the two lambdas are equivalent.
    let (arena, root) = prepared(r"map (\y. y+1) (map (\x. x+1) vs)");
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    let lams = subterms_of_size(&arena, root, 6);
    assert_eq!(lams.len(), 2);
    assert_eq!(hashes.get(lams[0]), hashes.get(lams[1]));
}

#[test]
fn section2_2_false_positive_name_overloading() {
    // foo (let x=bar in x+2) (let x=pub in x+2): §2.2's false-positive
    // trap. The unique-binder preprocessing renames the two binders
    // apart, so the two x+2 occurrences refer to *different* binders and
    // correctly land in different classes — "the second problem can
    // readily be addressed by preprocessing" (§2.2). The enclosing lets
    // differ too (different rhs free variables).
    let (arena, root) = prepared("foo (let x = bar in x+2) (let x = pubx in x+2)");
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    let x2s = subterms_of_size(&arena, root, 5);
    assert_eq!(x2s.len(), 2);
    assert_ne!(
        hashes.get(x2s[0]),
        hashes.get(x2s[1]),
        "after uniquify the x+2s refer to different binders"
    );
    let lets: Vec<NodeId> = lambda_lang::visit::preorder(&arena, root)
        .into_iter()
        .filter(|&n| matches!(arena.node(n), ExprNode::Let(_, _, _)))
        .collect();
    assert_ne!(hashes.get(lets[0]), hashes.get(lets[1]), "the lets differ");

    // (Hashing the raw program without preprocessing is rejected by a
    // debug assertion — the §2.2 precondition is load-bearing, and
    // `check_unique_binders` reports the violation.)
    let mut raw = ExprArena::new();
    let raw_root = parse(&mut raw, "foo (let x = bar in x+2) (let x = pubx in x+2)").unwrap();
    assert!(check_unique_binders(&raw, raw_root).is_err());
}

#[test]
fn section2_4_de_bruijn_failures_are_fixed_by_ours() {
    // False-negative example.
    let (arena, root) = prepared(r"\t. foo (\x. x + t) (\y. \x. x + t)");
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    let lams = subterms_of_size(&arena, root, 6);
    assert_eq!(hashes.get(lams[0]), hashes.get(lams[1]));

    // False-positive example.
    let (arena2, root2) = prepared(r"\t. foo (\x. t * (x+1)) (\y. \x. y * (x+1))");
    let hashes2 = hash_all_subexpressions(&arena2, root2, &scheme());
    let lams2 = subterms_of_size(&arena2, root2, 10);
    assert_ne!(hashes2.get(lams2[0]), hashes2.get(lams2[1]));
}

#[test]
fn section4_5_position_tree_identity() {
    // add x y vs add x x have the same structure but different maps; the
    // e-summary (and hence the hash) must differ (§4.2).
    let (arena, root) = prepared("pair (add x y) (add x x)");
    let hashes = hash_all_subexpressions(&arena, root, &scheme());
    let terms = subterms_of_size(&arena, root, 5);
    assert_eq!(terms.len(), 2);
    assert_ne!(hashes.get(terms[0]), hashes.get(terms[1]));
}

#[test]
fn cse_end_to_end_on_paper_intro() {
    let (arena, root) = prepared("let v = 3 in let a = 10 in (a + (v+7)) * (v+7)");
    let before = lambda_lang::eval::eval(&arena, root).expect("evaluates");
    let result = eliminate_common_subexpressions(&arena, root, &scheme(), CseConfig::default());
    assert_eq!(result.rewrites.len(), 1);
    let after = lambda_lang::eval::eval(&result.arena, result.root).expect("still evaluates");
    assert!(before.observably_eq(&after));
    // The rewritten program is strictly smaller.
    assert!(result.arena.subtree_size(result.root) < arena.subtree_size(root));
}

#[test]
fn whole_pipeline_agrees_with_ground_truth_on_models() {
    // The three §7.2 models: hash classes must equal ground truth (the
    // models are big, ground truth is O(n²·n) — use the smallest).
    let mut arena = ExprArena::new();
    let root = expr_gen::mnist_cnn(&mut arena);
    let classes = hash_classes(&arena, root, &scheme());
    let truth = ground_truth_classes(&arena, root);
    assert!(alpha_hash::equiv::same_partition(&classes, &truth));
}

#[test]
fn all_four_algorithms_run_on_all_models() {
    let mut arena = ExprArena::new();
    let mnist = expr_gen::mnist_cnn(&mut arena);
    let gmm = expr_gen::gmm(&mut arena);
    let s = scheme();
    for (arena_ref, root) in [(&arena, mnist), (&arena, gmm)] {
        let structural = hash_baselines::hash_all_structural(arena_ref, root, &s);
        let debruijn = hash_baselines::hash_all_debruijn(arena_ref, root, &s);
        let ln = hash_baselines::hash_all_locally_nameless(arena_ref, root, &s);
        let ours = hash_all_subexpressions(arena_ref, root, &s);
        let n = arena_ref.subtree_size(root);
        assert_eq!(structural.len(), n);
        assert_eq!(debruijn.len(), n);
        assert_eq!(ln.len(), n);
        assert_eq!(ours.len(), n);
        // The two correct algorithms agree on the induced partition.
        let ln_classes = group_by_hash(&ln);
        let our_classes = group_by_hash(&ours);
        assert!(alpha_hash::equiv::same_partition(&ln_classes, &our_classes));
    }
}
