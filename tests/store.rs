//! Integration test for the alpha-store subsystem: a generated corpus is
//! ingested concurrently and the resulting partition is checked — exactly —
//! against pairwise ground-truth alpha-equivalence.
//!
//! This is a scaled-down (fast) version of the `corpus_dedup` example's
//! 10k-term run: the example demonstrates, this test verifies.

use alpha_hash_bench::{parallel_ingest, store_corpus};
use hash_modulo_alpha::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Ground-truth partition of the corpus roots via pairwise `alpha_eq`
/// against one representative per class (size-bucketed, like
/// `ground_truth_classes`).
fn ground_truth_corpus_partition(arena: &ExprArena, roots: &[NodeId]) -> Vec<Vec<usize>> {
    let mut classes: Vec<(usize, NodeId, Vec<usize>)> = Vec::new();
    for (i, &r) in roots.iter().enumerate() {
        let size = arena.subtree_size(r);
        match classes
            .iter_mut()
            .find(|(s, rep, _)| *s == size && alpha_eq(arena, *rep, arena, r))
        {
            Some((_, _, members)) => members.push(i),
            None => classes.push((size, r, vec![i])),
        }
    }
    let mut out: Vec<Vec<usize>> = classes.into_iter().map(|(_, _, m)| m).collect();
    out.sort();
    out
}

#[test]
fn concurrent_corpus_dedup_is_exact() {
    let mut arena = ExprArena::new();
    // Seed pool of 41 over 900 terms: heavy alpha-duplication, with half
    // the terms alpha-renamed (see `store_corpus`).
    let roots = store_corpus(&mut arena, 900, 41);

    let store: AlphaStore<u64> = AlphaStore::with_shards(HashScheme::new(2024), 8);
    parallel_ingest(&store, &arena, &roots, 8);
    assert_eq!(store.num_terms(), roots.len());

    // Store partition of the corpus…
    let mut by_class: HashMap<ClassId, Vec<usize>> = HashMap::new();
    for (i, &r) in roots.iter().enumerate() {
        let class = store.lookup(&arena, r).expect("ingested term is found");
        by_class.entry(class).or_default().push(i);
    }
    let mut store_partition: Vec<Vec<usize>> = by_class.into_values().collect();
    store_partition.sort();

    // …must equal ground truth exactly.
    let truth = ground_truth_corpus_partition(&arena, &roots);
    assert_eq!(store_partition, truth);
    assert_eq!(store.num_classes(), truth.len());
    assert!(
        truth.len() < roots.len(),
        "corpus was built to contain alpha-duplicates"
    );

    // The store audit trail: every merge confirmed, nothing probabilistic.
    let stats = store.stats();
    assert!(stats.is_exact(), "{stats}");
    assert_eq!(stats.terms_ingested, roots.len() as u64);
    assert_eq!(
        stats.classes_created + stats.merges_confirmed,
        stats.terms_ingested
    );
}

#[test]
fn subexpression_mode_stats_are_exact_and_consistent() {
    const MIN_NODES: usize = 3;
    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, 300, 23);

    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(0x5EED)
        .shards(8)
        .subexpressions(MIN_NODES)
        .build();
    let outcomes = store.insert_batch(&arena, &roots);
    let stats = store.stats();

    // Exactness first: the whole point of confirmed merges — at both
    // granularities — is that this never moves off zero.
    assert!(stats.is_exact(), "{stats}");
    assert_eq!(stats.unconfirmed_merges, 0);

    // Root-side counters keep their classic identities.
    assert_eq!(stats.terms_ingested, roots.len() as u64);
    assert_eq!(
        stats.classes_created,
        store.num_classes() as u64,
        "every class on record was created by exactly one insert entry"
    );

    // Subexpression counters reconcile with the per-insert summaries…
    let indexed: u64 = outcomes.iter().map(|o| o.subs.indexed).sum();
    let merged: u64 = outcomes.iter().map(|o| o.subs.merged).sum();
    let skipped: u64 = outcomes.iter().map(|o| o.subs.skipped_min_nodes).sum();
    assert_eq!(stats.subterms_indexed, indexed);
    assert_eq!(stats.subterm_merges_confirmed, merged);
    assert_eq!(stats.subterms_skipped_min_nodes, skipped);
    assert!(indexed > 0 && skipped > 0, "corpus exercises the floor");

    // …and with the corpus shape: every proper subexpression was either
    // indexed or skipped by the floor, never silently dropped.
    let proper_subterms: u64 = roots
        .iter()
        .map(|&r| arena.subtree_size(r) as u64 - 1)
        .sum();
    assert_eq!(indexed + skipped, proper_subterms);

    // Membership/occurrence bookkeeping balances over all classes.
    let classes: Vec<ClassId> = store.classes().collect();
    let members: u64 = classes.iter().map(|&c| store.members(c)).sum();
    let occurrences: u64 = classes.iter().map(|&c| store.occurrences(c)).sum();
    assert_eq!(members, stats.terms_ingested);
    assert_eq!(occurrences, stats.terms_ingested + stats.subterms_indexed);
}

#[test]
fn store_backed_cse_over_a_corpus_shrinks_it() {
    let mut arena = ExprArena::new();
    let mut roots = Vec::new();
    for i in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(i % 5);
        roots.push(hash_modulo_alpha::gen::arithmetic(&mut arena, 40, &mut rng));
    }

    let store: AlphaStore<u64> = AlphaStore::default();
    let result = store_backed_cse(&store, &arena, &roots, CseConfig::default());
    assert!(
        result.duplicates_dropped >= 24,
        "seed pool of 5 over 30 terms"
    );
    assert!(result.forest.nodes_after <= result.forest.nodes_before);

    // Representative extraction works for every class created.
    for class in store.classes() {
        let mut dst = ExprArena::new();
        let rep = store.representative_into(class, &mut dst);
        assert_eq!(dst.subtree_size(rep), store.node_count(class));
    }
}

#[test]
fn corpus_dag_sharing_beats_per_term_trees() {
    let mut arena = ExprArena::new();
    let mut roots = Vec::new();
    for i in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(i % 6);
        roots.push(hash_modulo_alpha::gen::balanced(&mut arena, 50, &mut rng));
    }
    let scheme: HashScheme<u64> = HashScheme::new(9);
    let dag = corpus_shared_dag_size(&arena, &roots, &scheme);
    let trees: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    // 6 distinct seeds over 40 terms: at least the duplicate terms collapse.
    assert!(dag * 4 < trees, "dag={dag} trees={trees}");
}
