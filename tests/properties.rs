//! Cross-crate property tests: the paper's correctness claims, checked on
//! randomised inputs.
//!
//! The central invariant (§3 + §6.2): for any two subexpressions,
//! **hash equal ⟺ alpha-equivalent** — with the ⇐ direction exact and the
//! ⇒ direction holding up to collisions, which at b = 64/128 never occur
//! at test scale (Theorem 6.8 bounds the failure probability below
//! 10⁻¹⁰ even for 10⁹-node inputs).

use alpha_hash::combine::HashScheme;
use alpha_hash::equiv::{ground_truth_classes, group_by_hash, same_partition};
use alpha_hash::hashed::hash_all_subexpressions;
use alpha_hash::summary::fast::FastSummariser;
use alpha_hash::summary::reference::RefSummariser;
use lambda_lang::alpha::alpha_eq;
use lambda_lang::arena::ExprArena;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scheme() -> HashScheme<u64> {
    HashScheme::new(0x5EED)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash-induced classes equal ground-truth alpha classes on random
    /// balanced terms.
    #[test]
    fn hashed_classes_match_ground_truth_balanced(seed in any::<u64>(), size in 5usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::balanced(&mut arena, size, &mut rng);
        let classes = group_by_hash(&hash_all_subexpressions(&arena, root, &scheme()));
        let truth = ground_truth_classes(&arena, root);
        prop_assert!(same_partition(&classes, &truth));
    }

    /// Same for the spiky unbalanced family (deep binder nests).
    #[test]
    fn hashed_classes_match_ground_truth_unbalanced(seed in any::<u64>(), size in 5usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let classes = group_by_hash(&hash_all_subexpressions(&arena, root, &scheme()));
        let truth = ground_truth_classes(&arena, root);
        prop_assert!(same_partition(&classes, &truth));
    }

    /// And for closed arithmetic/let programs.
    #[test]
    fn hashed_classes_match_ground_truth_arith(seed in any::<u64>(), size in 20usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::arithmetic(&mut arena, size, &mut rng);
        let classes = group_by_hash(&hash_all_subexpressions(&arena, root, &scheme()));
        let truth = ground_truth_classes(&arena, root);
        prop_assert!(same_partition(&classes, &truth));
    }

    /// rebuild ∘ summarise ≡α id for the reference (§4.7) summariser.
    #[test]
    fn reference_rebuild_roundtrips(seed in any::<u64>(), size in 2usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::balanced(&mut arena, size, &mut rng);
        let mut s = RefSummariser::new();
        let summary = s.summarise(&arena, root);
        let mut dst = ExprArena::new();
        let rebuilt = s.rebuild(&summary, &mut dst);
        prop_assert!(alpha_eq(&arena, root, &dst, rebuilt));
    }

    /// rebuild ∘ summarise ≡α id for the fast (§4.8) summariser,
    /// including on let-heavy arithmetic programs.
    #[test]
    fn fast_rebuild_roundtrips(seed in any::<u64>(), size in 2usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = if size % 2 == 0 {
            expr_gen::unbalanced(&mut arena, size, &mut rng)
        } else {
            expr_gen::arithmetic(&mut arena, size, &mut rng)
        };
        let mut s = FastSummariser::new();
        let summary = s.summarise(&arena, root);
        let mut dst = ExprArena::new();
        let rebuilt = s.rebuild(&summary, &mut dst);
        prop_assert!(alpha_eq(&arena, root, &dst, rebuilt));
    }

    /// The three e-summary representations induce identical partitions.
    #[test]
    fn reference_fast_hashed_agree(seed in any::<u64>(), size in 5usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::balanced(&mut arena, size, &mut rng);

        let mut reference = RefSummariser::new();
        let ref_all = reference.summarise_all(&arena, root);
        let mut fast = FastSummariser::new();
        let fast_all = fast.summarise_all(&arena, root);
        let hashes = hash_all_subexpressions(&arena, root, &scheme());

        let nodes = lambda_lang::visit::postorder(&arena, root);
        for &a in &nodes {
            for &b in &nodes {
                let ref_eq = ref_all[&a] == ref_all[&b];
                let fast_eq = fast_all[&a] == fast_all[&b];
                let hash_eq = hashes.get(a) == hashes.get(b);
                prop_assert_eq!(ref_eq, fast_eq);
                prop_assert_eq!(ref_eq, hash_eq);
            }
        }
    }

    /// The Appendix C linear variant induces the same partition as the
    /// tagged algorithm.
    #[test]
    fn linear_variant_agrees(seed in any::<u64>(), size in 5usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let s = scheme();
        let mut linear = alpha_hash::linear::LinearSummariser::new(&arena, &s);
        let lin_classes = group_by_hash(&linear.summarise_all(&arena, root));
        let tag_classes = group_by_hash(&hash_all_subexpressions(&arena, root, &s));
        prop_assert!(same_partition(&lin_classes, &tag_classes));
    }

    /// De Bruijn term equality (ground truth #2) agrees with alpha_eq on
    /// random pairs of same-size terms.
    #[test]
    fn debruijn_equality_agrees_with_alpha_eq(seed in any::<u64>(), size in 2usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let e1 = expr_gen::balanced(&mut arena, size, &mut rng);
        let e2 = expr_gen::balanced(&mut arena, size, &mut rng);
        let (db1, r1) = lambda_lang::debruijn::to_debruijn(&arena, e1);
        let (db2, r2) = lambda_lang::debruijn::to_debruijn(&arena, e2);
        prop_assert_eq!(
            lambda_lang::debruijn::db_eq(&db1, r1, &db2, r2),
            alpha_eq(&arena, e1, &arena, e2)
        );
    }

    /// Uniquify preserves the alpha-class of the whole term and the
    /// per-subexpression partition sizes.
    #[test]
    fn uniquify_preserves_hashes(seed in any::<u64>(), size in 2usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let (uniq, uroot) = lambda_lang::uniquify(&arena, root);
        prop_assert!(alpha_eq(&arena, root, &uniq, uroot));
        let s = scheme();
        prop_assert_eq!(
            alpha_hash::hash_expr(&arena, root, &s),
            alpha_hash::hash_expr(&uniq, uroot, &s)
        );
    }

    /// CSE preserves evaluation on closed arithmetic programs.
    #[test]
    fn cse_preserves_evaluation(seed in any::<u64>(), size in 20usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::arithmetic(&mut arena, size, &mut rng);
        let before = lambda_lang::eval::eval(&arena, root).expect("arith programs evaluate");
        let result = alpha_hash::cse::eliminate_common_subexpressions(
            &arena,
            root,
            &scheme(),
            alpha_hash::cse::CseConfig::default(),
        );
        let after = lambda_lang::eval::eval(&result.arena, result.root)
            .expect("cse output evaluates");
        prop_assert!(before.observably_eq(&after));
        // And the output is never larger.
        prop_assert!(
            result.arena.subtree_size(result.root) <= arena.subtree_size(root)
        );
    }

    /// The incremental engine stays consistent with from-scratch hashing
    /// under random edit sequences.
    #[test]
    fn incremental_matches_scratch(seed in any::<u64>(), size in 10usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = expr_gen::balanced(&mut arena, size, &mut rng);
        let mut engine = alpha_hash::incremental::IncrementalHasher::new(
            arena,
            root,
            scheme(),
        );

        for round in 0..4u64 {
            let mut patch_rng = StdRng::seed_from_u64(seed ^ round);
            let mut patch = ExprArena::new();
            let patch_root =
                expr_gen::balanced(&mut patch, 1 + (round as usize * 3) % 7, &mut patch_rng);
            // Choose some live node (vary which by round).
            let mut countdown = (seed >> (8 * round)) as usize % size;
            let target = engine.find(|_, _| {
                if countdown == 0 {
                    true
                } else {
                    countdown -= 1;
                    false
                }
            });
            let Some(target) = target else { break };
            engine.replace_subtree(target, &patch, patch_root).expect("live target");
            prop_assert!(engine.verify_against_scratch(), "diverged after round {round}");
        }
    }

    /// print ∘ parse round-trips modulo alpha on machine-generated terms
    /// (the printer emits valid, re-parseable syntax).
    #[test]
    fn print_parse_roundtrip(seed in any::<u64>(), size in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let root = match size % 3 {
            0 => expr_gen::balanced(&mut arena, size, &mut rng),
            1 => expr_gen::unbalanced(&mut arena, size, &mut rng),
            _ => expr_gen::arithmetic(&mut arena, size, &mut rng),
        };
        let text = lambda_lang::print::print(&arena, root);
        let mut reparsed_arena = ExprArena::new();
        let reparsed = lambda_lang::parse(&mut reparsed_arena, &text)
            .unwrap_or_else(|e| panic!("printer emitted unparseable text: {e}\n{text}"));
        prop_assert!(
            alpha_eq(&arena, root, &reparsed_arena, reparsed),
            "round-trip changed the term: {text}"
        );
    }

    /// Whole-expression hashes at width 128 behave like width 64 for
    /// equality decisions (both collision-free at this scale), and all
    /// widths are computed from the same algorithm.
    #[test]
    fn widths_agree_on_equality(seed in any::<u64>(), size in 5usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ExprArena::new();
        let e1 = expr_gen::balanced(&mut arena, size, &mut rng);
        let e2 = expr_gen::balanced(&mut arena, size, &mut rng);
        let s64: HashScheme<u64> = HashScheme::new(1);
        let s128: HashScheme<u128> = HashScheme::new(1);
        let eq64 = alpha_hash::hash_expr(&arena, e1, &s64) == alpha_hash::hash_expr(&arena, e2, &s64);
        let eq128 = alpha_hash::hash_expr(&arena, e1, &s128) == alpha_hash::hash_expr(&arena, e2, &s128);
        prop_assert_eq!(eq64, eq128);
        prop_assert_eq!(eq64, alpha_eq(&arena, e1, &arena, e2));
    }
}
