//! Complexity regression tests for the §4.8 merge under [`FlatVarMap`]
//! storage: the Lemma 6.1 bound — total map operations at binary nodes is
//! O(n log n) — must survive the flat-map representation change, because
//! the merge still folds only the smaller map into the bigger one.
//!
//! The `merge_ops` counter counts exactly the Lemma 6.1 quantity (one per
//! smaller-side entry per binary node), so asserting `merge_ops ≤ c·n·log₂ n`
//! on adversarial deep/skewed inputs from `expr-gen` pins the bound.

use alpha_hash::combine::HashScheme;
use alpha_hash::hashed::HashedSummariser;
use lambda_lang::arena::{ExprArena, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Merge-op count for hashing the subtree at `root`.
fn merge_ops_of(arena: &ExprArena, root: NodeId) -> u64 {
    let scheme: HashScheme<u64> = HashScheme::new(0xC0);
    let mut summariser = HashedSummariser::new(arena, &scheme);
    let _ = summariser.summarise(arena, root);
    summariser.merge_ops
}

/// Asserts the Lemma 6.1 bound with a generous constant. The constant
/// absorbs the ±1 slack of ceil(log) and small-n effects; what the test
/// guards is the *shape* — a representation bug that made merges touch
/// the bigger side would overshoot this by orders of magnitude.
fn assert_log_linear(label: &str, n: usize, ops: u64) {
    let bound = (2.0 * n as f64 * (n as f64).log2()).ceil() as u64;
    assert!(
        ops <= bound,
        "{label}: merge_ops {ops} exceeds 2·n·log2(n) = {bound} for n = {n}"
    );
}

#[test]
fn adversarial_pairs_stay_log_linear() {
    // Appendix B.1 pairs: maximally skewed Lam/App wrapper spines around
    // inequivalent seeds — deep terms whose merges are all 1-into-M.
    let mut rng = StdRng::seed_from_u64(0xAD);
    for size in [512usize, 2048, 8192] {
        let mut arena = ExprArena::new();
        let (e1, e2) = expr_gen::adversarial_pair(&mut arena, size, &mut rng);
        for (side, root) in [("left", e1), ("right", e2)] {
            let ops = merge_ops_of(&arena, root);
            assert_log_linear(&format!("adversarial {size} ({side})"), size, ops);
        }
    }
}

#[test]
fn unbalanced_spines_stay_log_linear() {
    // §7.1's wildly unbalanced family: depth Θ(n).
    let mut rng = StdRng::seed_from_u64(0xBA);
    for size in [512usize, 4096, 16384] {
        let mut arena = ExprArena::new();
        let root = expr_gen::unbalanced(&mut arena, size, &mut rng);
        let n = arena.subtree_size(root);
        let ops = merge_ops_of(&arena, root);
        assert_log_linear(&format!("unbalanced {size}"), n, ops);
    }
}

#[test]
fn balanced_terms_stay_log_linear() {
    let mut rng = StdRng::seed_from_u64(0xBB);
    for size in [512usize, 4096, 16384] {
        let mut arena = ExprArena::new();
        let root = expr_gen::balanced(&mut arena, size, &mut rng);
        let n = arena.subtree_size(root);
        let ops = merge_ops_of(&arena, root);
        assert_log_linear(&format!("balanced {size}"), n, ops);
    }
}

#[test]
fn wide_open_spines_are_subquadratic_per_merge_op() {
    // The wide-open regime (sustained free-var width, width growing with
    // the node budget) is where the sorted-Vec spill was honestly
    // documented Θ(n²): every 1-into-M join rebuilt the whole M-entry
    // map. With the tree tier the per-merge-op cost is O(log width), so
    // doubling the node budget (and with it the width) must leave the
    // wall-time/merge_ops ratio roughly flat. A quadratic path multiplies
    // the per-op cost by ~4 across a 4x budget; the log path by ~1.2.
    let sizes = [8_000usize, 16_000, 32_000];
    let mut per_op = Vec::new();
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(0x77);
        let mut arena = ExprArena::new();
        let root = expr_gen::wide_open_spine(&mut arena, n, n / 8, &mut rng);
        let scheme: HashScheme<u64> = HashScheme::new(0xC0);
        // Best of three, to damp scheduler noise on loaded CI boxes.
        let mut best = f64::INFINITY;
        let mut ops = 0u64;
        for _ in 0..3 {
            let mut summariser = HashedSummariser::new(&arena, &scheme);
            let start = std::time::Instant::now();
            let _ = summariser.summarise(&arena, root);
            best = best.min(start.elapsed().as_secs_f64());
            ops = summariser.merge_ops;
        }
        assert_log_linear(&format!("wide {n}"), n, ops);
        per_op.push(best / ops as f64);
    }
    let growth = per_op[2] / per_op[0];
    assert!(
        growth < 2.5,
        "wide-open per-merge-op cost grew {growth:.2}x across a 4x node budget \
         (quadratic behaviour would grow ~4x): {per_op:?}"
    );
}

#[test]
fn distinct_variable_spine_is_worst_case_linear() {
    // A left spine applying n distinct free variables: every merge is
    // 1-into-M with the 1 side always smaller, so ops must be ~n, far
    // under the n·log n envelope.
    let mut arena = ExprArena::new();
    let mut e = arena.var_named("f");
    let n = 4_000usize;
    for i in 0..n {
        let v = arena.var_named(&format!("x{i}"));
        e = arena.app(e, v);
    }
    let ops = merge_ops_of(&arena, e);
    assert!(ops <= (n + 1) as u64, "spine merges must be linear: {ops}");
}
