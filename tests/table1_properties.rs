//! Table 1 as an executable specification: each algorithm's
//! true-positive / true-negative behaviour on the paper's §2.3–§2.4
//! counterexamples must match the published table.

use alpha_hash::combine::HashScheme;
use hash_modulo_alpha::prelude::*;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Row {
    true_positives: bool,
    true_negatives: bool,
}

fn lambda_subterms(arena: &ExprArena, root: NodeId, size: usize) -> Vec<NodeId> {
    lambda_lang::visit::preorder(arena, root)
        .into_iter()
        .filter(|&n| matches!(arena.node(n), ExprNode::Lam(_, _)) && arena.subtree_size(n) == size)
        .collect()
}

fn classify(run: impl Fn(&ExprArena, NodeId) -> alpha_hash::SubtreeHashes<u64>) -> Row {
    // No false negatives: §2.4's (\x.x+t) pair under different nesting.
    let mut a = ExprArena::new();
    let parsed = parse(&mut a, r"\t. foo (\x. x + t) (\y. \x. x + t)").unwrap();
    let (a, root) = uniquify(&a, parsed);
    let hashes = run(&a, root);
    let lams = lambda_subterms(&a, root, 6);
    let no_false_negatives = hashes.get(lams[0]) == hashes.get(lams[1]);

    // No false positives: §2.4's (\x.t*(x+1)) vs (\x.y*(x+1)).
    let mut b = ExprArena::new();
    let parsed = parse(&mut b, r"\t. foo (\x. t * (x+1)) (\y. \x. y * (x+1))").unwrap();
    let (b, root_b) = uniquify(&b, parsed);
    let hashes_b = run(&b, root_b);
    let lams_b = lambda_subterms(&b, root_b, 10);
    let no_false_positives = hashes_b.get(lams_b[0]) != hashes_b.get(lams_b[1]);

    Row {
        true_positives: no_false_positives,
        true_negatives: no_false_negatives,
    }
}

#[test]
fn structural_row_matches_table1() {
    let scheme: HashScheme<u64> = HashScheme::new(1);
    let row = classify(|a, r| hash_baselines::hash_all_structural(a, r, &scheme));
    assert_eq!(
        row,
        Row {
            true_positives: true,
            true_negatives: false
        }
    );
}

#[test]
fn de_bruijn_row_matches_table1() {
    let scheme: HashScheme<u64> = HashScheme::new(1);
    let row = classify(|a, r| hash_baselines::hash_all_debruijn(a, r, &scheme));
    assert_eq!(
        row,
        Row {
            true_positives: false,
            true_negatives: false
        }
    );
}

#[test]
fn locally_nameless_row_matches_table1() {
    let scheme: HashScheme<u64> = HashScheme::new(1);
    let row = classify(|a, r| hash_baselines::hash_all_locally_nameless(a, r, &scheme));
    assert_eq!(
        row,
        Row {
            true_positives: true,
            true_negatives: true
        }
    );
}

#[test]
fn ours_row_matches_table1() {
    let scheme: HashScheme<u64> = HashScheme::new(1);
    let row = classify(|a, r| hash_all_subexpressions(a, r, &scheme));
    assert_eq!(
        row,
        Row {
            true_positives: true,
            true_negatives: true
        }
    );
}

#[test]
fn appendix_c_variant_is_also_correct() {
    let scheme: HashScheme<u64> = HashScheme::new(1);
    let row = classify(|a, r| {
        let mut s = alpha_hash::linear::LinearSummariser::new(a, &scheme);
        s.summarise_all(a, r)
    });
    assert_eq!(
        row,
        Row {
            true_positives: true,
            true_negatives: true
        }
    );
}
