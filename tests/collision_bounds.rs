//! Statistical checks of the §6.2 collision analysis at reduced scale
//! (the full Appendix B experiment is `fig4_collisions`; these are fast
//! smoke versions that run in the test suite).

use alpha_hash::combine::HashScheme;
use alpha_hash::hash_expr;
use lambda_lang::ExprArena;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem 6.7 at b = 16, n = 128: collision probability for any fixed
/// inequivalent pair is at most 5(|e1|+|e2|)/2^16 = 1280/65536 ≈ 0.0195.
/// Even the adversarial generator must stay under the bound.
#[test]
fn adversarial_collisions_respect_theorem_6_7() {
    let trials = 4_000u64;
    let n = 128usize;
    let mut rng = StdRng::seed_from_u64(0xC0111);
    let mut collisions = 0u64;
    for _ in 0..trials {
        let scheme: HashScheme<u16> = HashScheme::new(rng.random());
        let mut arena = ExprArena::with_capacity(2 * n);
        let (e1, e2) = expr_gen::adversarial_pair(&mut arena, n, &mut rng);
        if hash_expr(&arena, e1, &scheme) == hash_expr(&arena, e2, &scheme) {
            collisions += 1;
        }
    }
    let bound = 5.0 * (2 * n) as f64 / f64::from(u32::from(u16::MAX) + 1);
    let rate = collisions as f64 / trials as f64;
    assert!(
        rate <= bound,
        "adversarial collision rate {rate} exceeds Theorem 6.7 bound {bound}"
    );
}

/// Random inequivalent pairs at b = 16 collide at (near) the perfect-hash
/// rate: out of 4000 pairs the expectation is ~0.06, so more than a
/// handful indicates a broken combiner family.
#[test]
fn random_pairs_collide_at_the_floor() {
    let trials = 4_000u64;
    let n = 128usize;
    let mut rng = StdRng::seed_from_u64(0xF100);
    let mut collisions = 0u64;
    for _ in 0..trials {
        let scheme: HashScheme<u16> = HashScheme::new(rng.random());
        let mut arena = ExprArena::with_capacity(2 * n);
        let e1 = expr_gen::balanced(&mut arena, n, &mut rng);
        let e2 = expr_gen::balanced(&mut arena, n, &mut rng);
        let wide: HashScheme<u128> = HashScheme::new(7);
        if hash_expr(&arena, e1, &wide) == hash_expr(&arena, e2, &wide) {
            continue; // alpha-equivalent pair: discard, per Appendix B
        }
        if hash_expr(&arena, e1, &scheme) == hash_expr(&arena, e2, &scheme) {
            collisions += 1;
        }
    }
    assert!(
        collisions <= 5,
        "random collisions {collisions} out of {trials}: far above floor"
    );
}

/// At b = 64 no collision is ever observable at test scale: distinct
/// subexpressions of a large program all hash distinctly.
#[test]
fn sixty_four_bits_are_collision_free_in_practice() {
    let mut rng = StdRng::seed_from_u64(0x64B175);
    let mut arena = ExprArena::new();
    let root = expr_gen::balanced(&mut arena, 30_000, &mut rng);
    let scheme: HashScheme<u64> = HashScheme::new(rng.random());
    let hashes = alpha_hash::hash_all_subexpressions(&arena, root, &scheme);

    // Group by hash; within each class, members must be alpha-equivalent
    // (spot-check a few classes against the exact predicate).
    let classes = alpha_hash::equiv::group_by_hash(&hashes);
    let mut checked = 0;
    for class in classes.iter().filter(|c| c.len() >= 2).take(25) {
        for window in class.windows(2) {
            assert!(
                lambda_lang::alpha_eq(&arena, window[0], &arena, window[1]),
                "hash collision between inequivalent subexpressions"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "expected some non-trivial classes");
}
