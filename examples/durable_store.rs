//! Crash-recovery walkthrough of the **durable** alpha-store: ingest a
//! 10,000-term corpus into a store backed by a write-ahead log, "crash"
//! without any shutdown ceremony (plus a simulated torn write), recover,
//! and verify the round-trip invariant — identical class partition,
//! canonical representatives and statistics, with 0 unconfirmed merges
//! after replay.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example durable_store
//! ```

use alpha_hash_bench::store_corpus;
use hash_modulo_alpha::prelude::*;
use hash_modulo_alpha::store::persist;
use std::collections::BTreeMap;
use std::time::Instant;

const TERMS: usize = 10_000;
const SEED_POOL: u64 = 701;

/// Class census keyed by canonical text (the class identity): members,
/// occurrences, node count. Equal censuses = same classes, same
/// representatives, same bookkeeping.
fn census(store: &AlphaStore<u64>) -> BTreeMap<String, (u64, u64, usize)> {
    store
        .classes()
        .map(|c| {
            (
                store.canonical_text(c),
                (store.members(c), store.occurrences(c), store.node_count(c)),
            )
        })
        .collect()
}

fn file_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("alpha-store-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_path = dir.join(persist::WAL_FILE);
    let snap_path = dir.join(persist::SNAPSHOT_FILE);

    let mut arena = ExprArena::new();
    let roots = store_corpus(&mut arena, TERMS, SEED_POOL);
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    println!("corpus: {} terms, {corpus_nodes} nodes", roots.len());

    let builder = || AlphaStore::<u64>::builder().seed(0x5EED).shards(8);

    // ── Life before the crash ────────────────────────────────────────────
    // Ingest in three eras: plain WAL appends, a compaction (snapshot +
    // WAL truncate), and a snapshot with the WAL left in place — so
    // recovery exercises snapshot load AND tail replay.
    let (classes_before, census_before, stats_before) = {
        let store = builder().open_durable(&dir).expect("create durable store");
        let start = Instant::now();
        store.insert_batch(&arena, &roots[..6_000]);
        store.compact().expect("compact");
        store.insert_batch(&arena, &roots[6_000..8_000]);
        store.snapshot().expect("snapshot");
        store.insert_batch(&arena, &roots[8_000..]);
        let ingest = start.elapsed();
        println!(
            "durable ingest: {:.2?} ({:.0} terms/s), wal {} KiB + snapshot {} KiB",
            ingest,
            roots.len() as f64 / ingest.as_secs_f64(),
            file_len(&wal_path) / 1024,
            file_len(&snap_path) / 1024,
        );
        println!(
            "  wal records awaiting the next snapshot: {}",
            store.wal_records().expect("durable store")
        );

        let classes: Vec<ClassId> = roots
            .iter()
            .map(|&r| store.lookup(&arena, r).expect("ingested"))
            .collect();
        (classes, census(&store), store.stats())
    }; // store dropped — a crash, as far as the files are concerned
    println!("  pre-crash: {stats_before}");
    assert!(stats_before.is_exact());

    // A torn write on top: garbage where the next record would have gone.
    // Recovery must drop it at the CRC check, losing nothing that was
    // actually committed.
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("open wal");
        wal.write_all(&[0xAB; 17]).expect("simulate torn write");
    }

    // ── Recovery ─────────────────────────────────────────────────────────
    let start = Instant::now();
    let recovered = AlphaStore::<u64>::open(&dir).expect("recover");
    println!(
        "\nrecovered in {:.2?} (snapshot + WAL tail replay)",
        start.elapsed()
    );

    // The round-trip invariant, on all 10k terms.
    assert_eq!(recovered.num_terms(), roots.len());
    let stats_after = recovered.stats();
    assert_eq!(stats_after, stats_before, "stats survive the round trip");
    assert!(stats_after.is_exact(), "0 unconfirmed merges after replay");
    assert_eq!(
        census(&recovered),
        census_before,
        "same classes, same canon"
    );
    let classes_after: Vec<ClassId> = roots
        .iter()
        .map(|&r| recovered.lookup(&arena, r).expect("still ingested"))
        .collect();
    for (i, j) in (0..roots.len())
        .step_by(151)
        .flat_map(|i| (0..i).step_by(307).map(move |j| (i, j)))
    {
        assert_eq!(
            classes_before[i] == classes_before[j],
            classes_after[i] == classes_after[j],
            "partition changed at pair ({i},{j})"
        );
    }
    println!("  round trip OK: partition, representatives and stats identical");
    println!("  post-recovery: {stats_after}");

    // Recovery checkpointed: fresh snapshot, empty WAL, ready for traffic.
    assert_eq!(recovered.wal_records(), Some(0));
    let again = recovered.insert(&arena, roots[0]);
    assert!(!again.fresh, "old classes keep absorbing new inserts");
    let baseline = recovered.num_terms(); // 10k + the probe insert above

    // ── A harsher crash: truncation mid-record ───────────────────────────
    drop(recovered);
    {
        let store = AlphaStore::<u64>::open(&dir).expect("reopen");
        store.insert_batch(&arena, &roots[..500]); // 500 more records
    }
    let full = file_len(&wal_path);
    let cut = full - 37; // slice into the last record
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal")
        .set_len(cut)
        .expect("truncate");
    let survivor = AlphaStore::<u64>::open(&dir).expect("recover from torn tail");
    let replayed = survivor.num_terms() - baseline;
    println!(
        "\ntorn-tail crash: WAL cut {} bytes mid-record; {replayed}/500 \
         re-inserts survived, partition still exact: {}",
        full - cut,
        survivor.stats().is_exact(),
    );
    assert!(replayed < 500, "the torn record itself cannot survive");
    assert!(survivor.stats().is_exact());

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("\ndurable store demo OK");
}
