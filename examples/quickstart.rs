//! Quickstart: hash every subexpression of a program modulo
//! alpha-equivalence and list the equivalence classes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash::equiv::group_by_hash;
use alpha_hash::hashed::hash_all_subexpressions;
use lambda_lang::{parse, print, uniquify, ExprArena};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §1 motivating program: two lambdas that are
    // alpha-equivalent but not syntactically identical.
    let source = r"foo (\x. x + 7) (\y. y + 7)";
    println!("program: {source}\n");

    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, source)?;

    // Precondition (§2.2): every binding site binds a distinct name.
    let (arena, root) = uniquify(&arena, parsed);

    // Hash all subexpressions in O(n log^2 n).
    let scheme: HashScheme<u64> = HashScheme::default();
    let hashes = hash_all_subexpressions(&arena, root, &scheme);

    // Group into alpha-equivalence classes (the §3 goal).
    let classes = group_by_hash(&hashes);
    println!(
        "{} subexpressions, {} classes:",
        arena.subtree_size(root),
        classes.len()
    );
    for class in &classes {
        let rendered = print::print(&arena, class[0]);
        let hash = hashes.get(class[0]).expect("hashed");
        println!("  x{:<2} [{hash:016x}]  {rendered}", class.len());
    }

    // The headline: the two lambdas landed in one class.
    let shared = classes
        .iter()
        .find(|c| c.len() == 2 && arena.subtree_size(c[0]) == 6)
        .expect("the two lambdas form a class");
    println!(
        "\nalpha-equivalent pair found: {} == {}",
        print::print(&arena, shared[0]),
        print::print(&arena, shared[1]),
    );
    Ok(())
}
