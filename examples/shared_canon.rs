//! Canon-DAG dedup drill: how much resident memory does hash-consing the
//! canonical forms save?
//!
//! Ingests a duplicate-heavy corpus at `Subexpressions` granularity —
//! the configuration that used to materialize one standalone canonical
//! arena per indexed subterm class — and reports what the shared canon
//! node table actually holds: every distinct canonical node exactly once,
//! however many classes reach it. The "logical" total is what the
//! pre-DAG, arena-per-class design kept resident; the ratio between the
//! two is the structure-sharing win the PLDI 2021 paper's DAG framing
//! promises. The drill also exercises `contains_batch`, the batched
//! containment probe answered against the same DAG, and `verify_on_replay`
//! paranoid recovery over a durable round trip.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shared_canon
//! ```

use hash_modulo_alpha::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TERMS: usize = 4_000;
const MIN_NODES: usize = 3;

fn main() {
    // ── A corpus with heavy alpha-duplication (small seed pool) ─────────
    let mut arena = ExprArena::new();
    let mut roots = Vec::with_capacity(TERMS);
    for i in 0..TERMS as u64 {
        let mut rng = StdRng::seed_from_u64(i % 223);
        let size = 10 + (i as usize % 5) * 10;
        roots.push(hash_modulo_alpha::gen::balanced(&mut arena, size, &mut rng));
    }
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();

    // ── Ingest at subexpression granularity ─────────────────────────────
    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(0x5EED)
        .shards(8)
        .subexpressions(MIN_NODES)
        .build();
    let start = Instant::now();
    store.insert_batch(&arena, &roots);
    let ingest = start.elapsed();
    let stats = store.stats();
    assert!(stats.is_exact(), "every merge confirmed: {stats}");

    println!(
        "ingested {TERMS} terms / {corpus_nodes} nodes at min_nodes={MIN_NODES} in {:.1?}",
        ingest
    );
    println!("  {stats}");

    // ── The headline: resident vs logical canonical storage ─────────────
    let dag = store.canon_dag_stats();
    println!("  {dag}");
    println!(
        "  per-class standalone arenas would hold {} nodes; the DAG holds {} ({:.2}x dedup)",
        dag.logical_nodes,
        dag.resident_nodes,
        dag.sharing_ratio()
    );
    assert!(
        dag.sharing_ratio() >= 3.0,
        "duplicate-heavy corpus must share canonical structure at least 3x: {dag}"
    );

    // ── Batched containment probes against the DAG ──────────────────────
    let patterns = &roots[..1_000.min(roots.len())];
    let start = Instant::now();
    let found = store.contains_batch(&arena, patterns);
    let batch = start.elapsed();
    assert!(
        found.iter().all(Option::is_some),
        "corpus terms are contained"
    );
    println!(
        "  contains_batch: {} patterns in {:.1?} ({:.0} queries/s)",
        patterns.len(),
        batch,
        patterns.len() as f64 / batch.as_secs_f64()
    );

    // ── Durable round trip with paranoid recovery ───────────────────────
    let dir = std::env::temp_dir().join(format!("shared-canon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(0x5EED)
            .shards(8)
            .subexpressions(MIN_NODES)
            .verify_on_replay(true)
    };
    builder()
        .open_durable(&dir)
        .expect("create durable store")
        .insert_batch(&arena, &roots[..500]);
    let start = Instant::now();
    let reopened = builder()
        .open_durable(&dir)
        .expect("paranoid recovery re-hashes every record");
    println!(
        "  paranoid recovery of {} terms (every record re-hashed): {:.1?}, {}",
        reopened.num_terms(),
        start.elapsed(),
        if reopened.stats().is_exact() {
            "exact"
        } else {
            "NOT EXACT"
        }
    );
    assert!(reopened.stats().is_exact());
    assert_eq!(reopened.num_terms(), 500);
    let _ = std::fs::remove_dir_all(&dir);
}
