//! A rewrite campaign over a live-hashed program: constant folding driven
//! through the §6.3 incremental engine, so subexpression hashes (and with
//! them CSE/sharing opportunities) stay current after every local rewrite
//! — the paper's "compilers apply thousands of rewrites" scenario.
//!
//! ```text
//! cargo run --release --example constant_folding
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash::folding::fold_constants;
use alpha_hash::incremental::IncrementalHasher;
use lambda_lang::{parse, print, uniquify, ExprArena};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r"\k. let t = 2 * 3 + k in let u = t * (4 - 4 + 1) in u + (10 / 2 - 5)";
    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, source)?;
    let (arena, root) = uniquify(&arena, parsed);

    let mut engine = IncrementalHasher::new(arena, root, HashScheme::<u64>::default());
    println!("before: {}", print::print(engine.arena(), engine.root()));
    println!(
        "        ({} nodes, root hash {:016x})",
        engine.live_nodes(),
        engine.root_hash()
    );

    let report = fold_constants(&mut engine);

    println!("after:  {}", print::print(engine.arena(), engine.root()));
    println!(
        "        ({} nodes, root hash {:016x})",
        engine.live_nodes(),
        engine.root_hash()
    );
    println!(
        "campaign: {} rewrites, {} nodes re-hashed in total",
        report.rewrites, report.nodes_rehashed
    );

    assert!(engine.verify_against_scratch());
    println!("hashes verified against a from-scratch pass after the campaign.");
    Ok(())
}
