//! Store-level incremental rewrites: `AlphaStore::update` re-hashes only
//! the changed spine of a previously ingested term, repoints the same
//! `TermId` at the rewritten class, and writes one WAL **delta record**
//! so the edit survives a crash — all without re-ingesting the term.
//!
//! (The sibling example `incremental_rewrites.rs` demos the raw
//! `IncrementalHasher` this path is built on; this one shows the same
//! idea lifted to the store: durability, class bookkeeping,
//! subexpression re-indexing and typed refusals included.)
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example incremental_rewrite
//! ```

use hash_modulo_alpha::prelude::*;

/// The child-slot path (in `Rewrite` semantics) to the first subtree of
/// `root` whose printed form equals `wanted` — depth-first, so the
/// leftmost occurrence wins.
fn path_to(arena: &ExprArena, root: NodeId, wanted: &str) -> Option<Vec<u32>> {
    fn walk(arena: &ExprArena, node: NodeId, wanted: &str, path: &mut Vec<u32>) -> bool {
        if print(arena, node) == wanted {
            return true;
        }
        for (slot, child) in arena.node(node).children().into_iter().enumerate() {
            path.push(slot as u32);
            if walk(arena, child, wanted, path) {
                return true;
            }
            path.pop();
        }
        false
    }
    let mut path = Vec::new();
    walk(arena, root, wanted, &mut path).then_some(path)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("incremental-rewrite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = || {
        AlphaStore::<u64>::builder()
            .seed(0x1D0)
            .shards(4)
            .subexpressions(2)
    };

    // ── Ingest a term and an alpha-variant of it ─────────────────────────
    let mut arena = ExprArena::new();
    let host = parse(&mut arena, r"\f. f (square w) + f (square w)").expect("parse host");
    let twin = parse(&mut arena, r"\g. g (square w) + g (square w)").expect("parse twin");

    let store = builder().open_durable(&dir).expect("open durable store");
    let ins = store.insert(&arena, host);
    let twin_ins = store.insert(&arena, twin);
    assert_eq!(ins.class, twin_ins.class, "alpha-variants share a class");
    println!(
        "ingested host {:#018x} and its alpha-twin:",
        ins.term.to_bits()
    );
    println!(
        "  class {:#018x} = {}  ({} members)",
        ins.class.to_bits(),
        store.canonical_text(ins.class),
        store.members(ins.class)
    );

    // ── Preview, then apply, a spine-local rewrite ───────────────────────
    // Paths address the term's *canonical representative*; resolve the
    // first `square w` there rather than hard-coding slots.
    let mut rep_arena = ExprArena::new();
    let rep = store.representative_into(ins.class, &mut rep_arena);
    let path = path_to(&rep_arena, rep, "square w").expect("site exists");
    println!(
        "\nrewrite site: path {path:?} of {}",
        print(&rep_arena, rep)
    );

    let mut patch_arena = ExprArena::new();
    let cube = {
        let f = patch_arena.var_named("cube");
        let w = patch_arena.var_named("w");
        patch_arena.app(f, w)
    };
    let rewrite = Rewrite {
        path: &path,
        arena: &patch_arena,
        root: cube,
    };

    // `preview_rewrite` shows the effective term without touching state.
    let mut preview = ExprArena::new();
    let previewed = store
        .preview_rewrite(ins.term, rewrite, &mut preview)
        .expect("preview");
    println!("preview:      {}", print(&preview, previewed));

    let out = store.update(ins.term, rewrite);
    assert_eq!(out.term, ins.term, "updates repoint, they never reissue");
    assert!(out.class != out.old_class);
    println!(
        "updated: class {:#018x} -> {:#018x} ({}), {} spine nodes re-hashed, \
         {} subexpression occurrences re-indexed ({} merged)",
        out.old_class.to_bits(),
        out.class.to_bits(),
        if out.fresh { "fresh" } else { "merged" },
        out.spine_nodes_rehashed,
        out.subs.indexed,
        out.subs.merged,
    );

    // The handle moved; its alpha-twin stays where it was.
    assert_eq!(store.class_of(ins.term), out.class);
    assert_eq!(store.class_of(twin_ins.term), out.old_class);
    println!(
        "old class keeps the twin: {} member(s), new class holds {}",
        store.members(out.old_class),
        store.canonical_text(out.class),
    );

    // ── Refusals are typed and leave no trace ────────────────────────────
    // A replacement whose free variable names a host binder would be
    // captured, so the store refuses it up front; so do unknown handles.
    let mut bad_arena = ExprArena::new();
    let binder_name = {
        let ExprNode::Lam(binder, _) = rep_arena.node(rep) else {
            unreachable!("host is a lambda");
        };
        rep_arena.name(binder).to_owned()
    };
    let bad = bad_arena.var_named(&binder_name);
    let capture = store.try_update(
        ins.term,
        Rewrite {
            path: &path,
            arena: &bad_arena,
            root: bad,
        },
    );
    assert!(matches!(capture, Err(StoreError::InvalidRewrite { .. })));
    println!("\ncapture hazard refused: {}", capture.unwrap_err());
    let bogus = store.try_update(TermId::from_bits(u64::MAX), rewrite);
    assert!(matches!(bogus, Err(StoreError::InvalidRewrite { .. })));
    println!("unknown handle refused: {}", bogus.unwrap_err());

    // ── The delta record survives a crash ────────────────────────────────
    // Drop without any shutdown ceremony: recovery replays the insert
    // records *and* the update's delta record through normal ingest.
    let stats_before = store.stats();
    let census_before = store.canonical_text(out.class);
    drop(store);

    let store = builder().open_durable(&dir).expect("recover");
    let recovery = store.recovery_info().expect("durable store");
    println!(
        "\nrecovered: replayed {} WAL record(s), {} terms, {} classes",
        recovery.replayed_records,
        store.num_terms(),
        store.num_classes(),
    );
    assert_eq!(store.class_of(ins.term), out.class, "delta replayed");
    assert_eq!(store.class_of(twin_ins.term), out.old_class);
    assert_eq!(store.canonical_text(out.class), census_before);
    assert_eq!(store.stats().terms_ingested, stats_before.terms_ingested);
    assert!(
        store.stats().is_exact(),
        "0 unconfirmed merges after replay"
    );

    // The update counters are live-path instruments: replay goes through
    // normal ingest and does not bump them.
    println!("\nupdate instruments (fresh store after replay — all zero):");
    for line in store.obs_report().to_prometheus().lines().filter(|l| {
        !l.starts_with('#')
            && (l.contains("alpha_store_updates_applied")
                || l.contains("alpha_store_spine_nodes_rehashed"))
    }) {
        println!("  {line}");
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nok");
}
