//! Walkthrough of the `alpha-store` subsystem: ingest a **10,000-term
//! corpus** concurrently, deduplicate it modulo alpha, audit exactness,
//! and run cross-term CSE over the surviving representatives.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example corpus_dedup
//! ```

use alpha_hash_bench::{parallel_ingest, store_corpus};
use hash_modulo_alpha::prelude::*;
use std::time::Instant;

const TERMS: usize = 10_000;
const SEED_POOL: u64 = 701; // distinct generator seeds ≈ expected classes
const THREADS: usize = 8;

fn main() {
    let mut arena = ExprArena::new();
    let start = Instant::now();
    // 10k terms drawn from ~700 generator seeds, half alpha-renamed so
    // duplicates are not syntactically identical.
    let roots = store_corpus(&mut arena, TERMS, SEED_POOL);
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();
    println!(
        "corpus: {} terms, {} nodes total (built in {:.2?})",
        roots.len(),
        corpus_nodes,
        start.elapsed()
    );

    // ── Concurrent ingest ────────────────────────────────────────────────
    let store: AlphaStore<u64> = AlphaStore::builder().seed(0x5EED).shards(8).build();
    let start = Instant::now();
    parallel_ingest(&store, &arena, &roots, THREADS);
    let ingest = start.elapsed();
    let stats = store.stats();
    println!(
        "ingested from {THREADS} threads in {:.2?} ({:.0} terms/s)",
        ingest,
        roots.len() as f64 / ingest.as_secs_f64()
    );
    println!("  {stats}");
    println!(
        "  dedup ratio: {:.1}x ({} terms -> {} classes)",
        roots.len() as f64 / store.num_classes() as f64,
        roots.len(),
        store.num_classes()
    );
    assert!(
        stats.is_exact(),
        "every merge must be canonically confirmed"
    );

    // ── Spot-check exactness against ground truth ────────────────────────
    // Pairwise alpha_eq over the full 10k corpus is O(n²·n); sample pairs
    // instead: every sampled pair must agree with the store's verdict.
    let start = Instant::now();
    let mut checked = 0usize;
    for i in (0..roots.len()).step_by(97) {
        let class_i = store.lookup(&arena, roots[i]);
        for j in (0..i).step_by(193) {
            let same_class = class_i == store.lookup(&arena, roots[j]);
            let equivalent = alpha_eq(&arena, roots[i], &arena, roots[j]);
            assert_eq!(same_class, equivalent, "pair ({i},{j}) disagrees");
            checked += 1;
        }
    }
    println!(
        "ground-truth spot check: {checked} sampled pairs agree ({:.2?})",
        start.elapsed()
    );

    // ── Classes up close ─────────────────────────────────────────────────
    let mut classes = store.classes_vec();
    classes.sort_by_key(|&c| std::cmp::Reverse(store.members(c)));
    println!("\nbiggest classes:");
    for &class in classes.iter().take(3) {
        let text = store.canonical_text(class);
        let preview: String = text.chars().take(48).collect();
        println!(
            "  {:?}: {} members, {} nodes, canonical form {}{}",
            class,
            store.members(class),
            store.node_count(class),
            preview,
            if text.len() > 48 { "…" } else { "" },
        );
    }

    // ── Cross-corpus sharing ─────────────────────────────────────────────
    let sample: Vec<NodeId> = roots.iter().copied().step_by(40).collect();
    let dag = store.shared_dag_size(&arena, &sample);
    let trees: usize = sample.iter().map(|&r| arena.subtree_size(r)).sum();
    println!(
        "\nshared-DAG size of a {}-term sample: {} nodes vs {} as trees ({:.1}x smaller)",
        sample.len(),
        dag,
        trees,
        trees as f64 / dag as f64
    );

    let cse_store: AlphaStore<u64> = AlphaStore::default();
    let result = store_backed_cse(&cse_store, &arena, &sample, CseConfig::default());
    println!(
        "store-backed CSE over the sample: {} whole-term duplicates dropped, \
         {} shared lets hoisted, {} -> {} nodes",
        result.duplicates_dropped,
        result.forest.shared.len(),
        result.forest.nodes_before,
        result.forest.nodes_after,
    );
}
