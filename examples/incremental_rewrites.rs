//! Incremental re-hashing during a rewrite session (paper §6.3).
//!
//! A compiler applies thousands of local rewrites; re-hashing the whole
//! program after each one wastes the compositionality the algorithm
//! worked hard for. This example maintains subexpression hashes through a
//! sequence of local edits and reports how little work each edit needed.
//!
//! ```text
//! cargo run --release --example incremental_rewrites
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash::incremental::IncrementalHasher;
use lambda_lang::{parse, ExprArena, ExprNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(2024);
    let mut arena = ExprArena::with_capacity(n);
    let root = expr_gen::balanced(&mut arena, n, &mut rng);

    let scheme: HashScheme<u64> = HashScheme::default();
    let mut engine = IncrementalHasher::new(arena, root, scheme);
    println!(
        "built incremental state for {} nodes (initial pass recomputed {})",
        engine.live_nodes(),
        engine.last_stats.nodes_recomputed
    );

    // A small library of rewrite payloads.
    let patches: Vec<(ExprArena, lambda_lang::NodeId)> = ["p + q", r"\w. w", "let t = 1 in t + t"]
        .iter()
        .map(|src| {
            let mut a = ExprArena::new();
            let r = parse(&mut a, src).expect("patch parses");
            (a, r)
        })
        .collect();

    let edits = 50;
    let mut total_recomputed = 0usize;
    let mut max_recomputed = 0usize;
    for i in 0..edits {
        // Pick a random leaf each time (choosing by skipping a random
        // number of candidates keeps targets spread across the tree).
        let skip = rng.random_range(0..1000usize);
        let mut seen = 0usize;
        let target = engine
            .find(|a, node| {
                if matches!(a.node(node), ExprNode::Var(_)) {
                    seen += 1;
                    seen > skip
                } else {
                    false
                }
            })
            .expect("a leaf");
        let (patch, patch_root) = &patches[i % patches.len()];
        let outcome = engine.replace_subtree(target, patch, *patch_root)?;
        total_recomputed += outcome.stats.nodes_recomputed;
        max_recomputed = max_recomputed.max(outcome.stats.nodes_recomputed);
    }

    println!("applied {edits} random leaf rewrites:");
    println!(
        "  mean nodes recomputed per edit: {:.1}",
        total_recomputed as f64 / edits as f64
    );
    println!("  max nodes recomputed per edit:  {max_recomputed}");
    println!("  tree size:                      {}", engine.live_nodes());
    println!(
        "  (a from-scratch re-hash would recompute all {} nodes per edit)",
        engine.live_nodes()
    );

    assert!(
        engine.verify_against_scratch(),
        "incremental state must match scratch"
    );
    println!("final state verified against a from-scratch pass.");
    Ok(())
}
