//! The subexpression-granularity store in action: build an
//! [`AlphaStore`] in `Subexpressions` mode, ingest a generated corpus,
//! and answer **containment queries modulo alpha** — "has any ingested
//! term ever contained this pattern?" — from the index that one fused
//! O(n (log n)²) pass per term built as a side effect.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example containment_search
//! ```

use hash_modulo_alpha::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TERMS: usize = 2_000;
const MIN_NODES: usize = 3;

fn main() {
    // ── Build: granularity is part of the store's configuration ─────────
    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(0x5EED)
        .shards(8)
        .subexpressions(MIN_NODES)
        .build();
    println!("store granularity: {:?}", store.granularity());

    // ── Ingest a corpus; every subexpression gets indexed ───────────────
    let mut arena = ExprArena::new();
    let mut roots = Vec::with_capacity(TERMS);
    for i in 0..TERMS as u64 {
        let mut rng = StdRng::seed_from_u64(i % 401);
        let size = 12 + (i as usize % 4) * 12;
        roots.push(hash_modulo_alpha::gen::balanced(&mut arena, size, &mut rng));
    }
    let corpus_nodes: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();

    let start = Instant::now();
    let outcomes = store.insert_batch(&arena, &roots);
    let ingest = start.elapsed();
    let stats = store.stats();
    println!(
        "ingested {} terms / {} nodes in {:.2?} ({:.0} terms/s)",
        roots.len(),
        corpus_nodes,
        ingest,
        roots.len() as f64 / ingest.as_secs_f64()
    );
    println!("  {stats}");
    assert!(
        stats.is_exact(),
        "every merge must be canonically confirmed"
    );
    let indexed: u64 = outcomes.iter().map(|o| o.subs.indexed).sum();
    let merged: u64 = outcomes.iter().map(|o| o.subs.merged).sum();
    println!(
        "  per-term summaries agree: {indexed} subterms indexed, {merged} merged into existing classes"
    );

    // ── Containment queries ─────────────────────────────────────────────
    // Positive: an alpha-renamed copy of a subexpression of term 0 must be
    // found, even though it was never ingested as a term of its own.
    let sample_sub = lambda_lang::visit::postorder(&arena, roots[0])
        .into_iter()
        .find(|&n| {
            let size = arena.subtree_size(n);
            size >= MIN_NODES && n != roots[0]
        })
        .expect("term 0 has an indexable proper subexpression");
    let mut query_arena = ExprArena::new();
    let renamed = lambda_lang::uniquify::uniquify_into(&arena, sample_sub, &mut query_arena);
    let start = Instant::now();
    let hit = store.contains(&query_arena, renamed);
    println!(
        "\ncontains(alpha-renamed subterm of term 0) -> {:?} ({:.2?})",
        hit,
        start.elapsed()
    );
    let class = hit.expect("subexpression of an ingested term must be contained");
    println!(
        "  class {:?}: {} occurrences across the corpus, {} whole-term members, canonical form {}",
        class,
        store.occurrences(class),
        store.members(class),
        store.canonical_text(class),
    );
    assert!(store.occurrences(class) >= 1);

    // Negative: a fresh pattern with a free variable no generator emits.
    let miss = parse(&mut query_arena, r"\q. q + only_here").unwrap();
    assert_eq!(store.contains(&query_arena, miss), None);
    println!("contains(never-seen pattern) -> None");

    // ── Per-term subexpression classes ──────────────────────────────────
    let term0 = outcomes[0].term;
    let classes: Vec<ClassId> = store.subterm_classes(term0).collect();
    println!(
        "\nterm {:?} spans {} distinct subexpression classes (root class included: {})",
        term0,
        classes.len(),
        classes.contains(&outcomes[0].class),
    );
    assert!(classes.contains(&outcomes[0].class));

    // ── The most-shared subexpressions ──────────────────────────────────
    let mut by_occurrences = store.classes_vec();
    by_occurrences.sort_by_key(|&c| std::cmp::Reverse(store.occurrences(c)));
    println!("\nmost-contained classes:");
    for &class in by_occurrences.iter().take(3) {
        let text = store.canonical_text(class);
        let preview: String = text.chars().take(48).collect();
        println!(
            "  {:?}: {} occurrences, {} nodes, {}{}",
            class,
            store.occurrences(class),
            store.node_count(class),
            preview,
            if text.len() > 48 { "…" } else { "" },
        );
    }
}
