//! Common-subexpression elimination modulo alpha — the paper's §1
//! application, run on its own examples.
//!
//! ```text
//! cargo run --example cse
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash::cse::{eliminate_common_subexpressions, CseConfig};
use lambda_lang::eval::{eval, Value};
use lambda_lang::{parse, print, uniquify, ExprArena};

fn run(source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, source)?;
    let (arena, root) = uniquify(&arena, parsed);

    let scheme: HashScheme<u64> = HashScheme::default();
    let result = eliminate_common_subexpressions(&arena, root, &scheme, CseConfig::default());

    println!("before: {}", print::print(&arena, root));
    println!("after:  {}", print::print(&result.arena, result.root));
    for rewrite in &result.rewrites {
        println!(
            "  bound {} = {} ({} occurrences, {} nodes each)",
            rewrite.binder, rewrite.subexpr, rewrite.occurrences, rewrite.subexpr_size
        );
    }

    // When the program is closed and evaluable, confirm the rewrite
    // preserved its value.
    if let (Ok(before), Ok(after)) = (eval(&arena, root), eval(&result.arena, result.root)) {
        assert!(Value::observably_eq(&before, &after));
        println!("  value preserved: {before:?}");
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §1: plain shared subexpression.
    run("let v = 3 in let a = 10 in (a + (v+7)) * (v+7)")?;
    // §1: the shared terms are only alpha-equivalent (different binders).
    run("(a + (let x = exp z in x+7)) * (let y = exp z in y+7)")?;
    // §1: sharing lambdas.
    run(r"foo (\x. x+7) (\y. y+7)")?;
    // §2.2: MUST NOT share x+2 — the two occurrences live under different
    // binders.
    run("foo (let x = bar in x+2) (let x = pubx in x+2)")?;
    Ok(())
}
