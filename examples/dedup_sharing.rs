//! Structure sharing modulo alpha: deduplicate the unrolled layers of a
//! BERT-style expression.
//!
//! Loop unrolling copies the layer body L times with fresh binders, so
//! the copies are alpha-equivalent but not syntactically identical —
//! plain hash-consing cannot share them, alpha-hashing can. This example
//! measures the storage needed when the tree is represented as a DAG with
//! **one stored representative per equivalence class**: a node's children
//! point at class representatives, so collapsing the L layer blocks into
//! one class also removes every node inside the duplicate copies (one of
//! the §2 motivations: "structure sharing to save memory").
//!
//! ```text
//! cargo run --release --example dedup_sharing
//! ```

use alpha_hash::combine::HashScheme;
use alpha_hash::equiv::shared_dag_size;
use alpha_hash::hashed::hash_all_subexpressions;
use hash_baselines::hash_all_structural;
use lambda_lang::{ExprArena, NodeId};

fn report(label: &str, arena: &ExprArena, root: NodeId) {
    let scheme: HashScheme<u64> = HashScheme::default();
    let n = arena.subtree_size(root);

    let alpha = shared_dag_size(arena, root, &hash_all_subexpressions(arena, root, &scheme));
    let syntactic = shared_dag_size(arena, root, &hash_all_structural(arena, root, &scheme));

    println!("{label}");
    println!("  tree nodes:                    {n}");
    println!(
        "  DAG nodes (syntactic sharing): {syntactic}  ({:.1}% of tree)",
        100.0 * syntactic as f64 / n as f64
    );
    println!(
        "  DAG nodes (sharing mod alpha): {alpha}  ({:.1}% of tree)",
        100.0 * alpha as f64 / n as f64
    );
    println!(
        "  alpha over syntactic:          {:.2}x smaller",
        syntactic as f64 / alpha as f64
    );
    println!();
}

fn main() {
    for layers in [4usize, 8, 12] {
        let mut arena = ExprArena::new();
        let root = expr_gen::models::bert_modular(&mut arena, layers);
        report(
            &format!("BERT (modular, {layers} unrolled layers)"),
            &arena,
            root,
        );
    }

    // The ANF variant chains layers through differently named
    // intermediates, so cross-layer sharing is weaker — realistic for
    // SSA-style IR dumps.
    let mut arena = ExprArena::new();
    let root = expr_gen::bert(&mut arena, 12);
    report("BERT (global ANF, 12 layers)", &arena, root);
}
