//! Observability drill: what do the store's built-in instruments see
//! during a real ingest?
//!
//! Ingests a 10k-term duplicate-heavy corpus into a durable,
//! subexpression-granularity store — the configuration that exercises
//! every instrumented hot path at once: fused prepare, shard-lock
//! waits, canon-table interning, WAL group commits, merge confirmation
//! by both interned-ref compare and frontier walk — then probes it,
//! checkpoints it, and prints the same report twice: once as Prometheus
//! text exposition (what a scrape endpoint would serve), once as JSON
//! (what a dashboard or the bench harness would consume).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example store_metrics
//! ```

use hash_modulo_alpha::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TERMS: usize = 10_000;

fn main() {
    let dir = std::env::temp_dir().join(format!("store-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A corpus with a small seed pool, so alpha-duplicates are common and
    // the merge-confirmation instruments have something to count.
    let mut arena = ExprArena::new();
    let mut roots = Vec::with_capacity(TERMS);
    for i in 0..TERMS as u64 {
        let mut rng = StdRng::seed_from_u64(i % 211);
        let size = 8 + (i as usize % 6) * 7;
        roots.push(hash_modulo_alpha::gen::balanced(&mut arena, size, &mut rng));
    }

    let store: AlphaStore<u64> = AlphaStore::builder()
        .seed(0x0B5)
        .shards(8)
        .subexpressions(3)
        .sync_on_commit(true) // so the fsync histogram has samples too
        .open_durable(&dir)
        .expect("open durable store");

    store.insert_batch(&arena, &roots);
    store.contains_batch(&arena, &roots[..64]);
    store.compact().expect("checkpoint");
    let stats = store.stats();
    assert!(stats.is_exact(), "every merge confirmed: {stats}");

    let report = store.obs_report();

    println!("=== Prometheus exposition ===");
    println!("{}", report.to_prometheus());

    println!("=== JSON ===");
    println!("{}", report.to_json());

    println!("=== Recent trace events (newest last) ===");
    let events = store.obs_recent_events();
    for e in events.iter().rev().take(10).rev() {
        println!("  {:>12} ns  {:<24} arg={}", e.dur_ns, e.name, e.arg);
    }
    println!("  ({} events in the ring)", events.len());

    drop(store);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
